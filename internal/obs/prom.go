package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4), the wire format every Prometheus-compatible scraper
// understands. Counters render as counters, gauges as gauges, and duration
// histograms as summaries with p50/p95/p99 quantiles in seconds.
//
// Rendering is deterministic: metric families are emitted in sorted name
// order, so the output is directly comparable across scrapes and suitable
// for golden tests and run artifacts.

// promPrefix namespaces every exported metric.
const promPrefix = "corgipile_"

// promQuantiles are the quantile labels rendered for each histogram.
var promQuantiles = []float64{0.5, 0.95, 0.99}

// promName sanitizes a registry metric name into a Prometheus metric name:
// dots and dashes become underscores and the corgipile_ namespace prefix is
// applied.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(promPrefix)
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry's current state in the Prometheus
// text exposition format. A nil registry renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format — counters, gauges, then duration histograms as summaries with
// p50/p95/p99 quantiles in seconds.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k]); err != nil {
			return err
		}
	}

	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[k])); err != nil {
			return err
		}
	}

	names = names[:0]
	for k := range s.Hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Hists[k]
		n := promName(k) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", n); err != nil {
			return err
		}
		for _, q := range promQuantiles {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n",
				n, promFloat(q), promFloat(h.Quantile(q).Seconds())); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			n, promFloat(h.Sum.Seconds()), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promFloat renders a float in the shortest exact form, matching the
// exposition format's expectations (no exponent for small values).
func promFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}
