package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
)

// This file implements durable run artifacts: a run directory holding
//
//	manifest.json   full config, seed, git SHA, go version, timestamp
//	epochs.jsonl    one EpochMetrics row per epoch
//	metrics.prom    the final registry snapshot in Prometheus text format
//	plan.json       the executed-plan profile, for profiled runs
//
// Two runs become diffable by diffing their directories; the manifest
// makes every number attributable to an exact source revision.

// Manifest identifies one run: what ran, from which source revision, with
// which configuration.
type Manifest struct {
	// Tool is the producing binary ("corgitrain", "corgibench", ...).
	Tool string `json:"tool"`
	// Run labels the run (workload/model/strategy, free-form).
	Run string `json:"run,omitempty"`
	// StartedAt is an injected RFC 3339 timestamp (callers pass it in so
	// tests stay deterministic).
	StartedAt string `json:"started_at,omitempty"`
	// GitSHA and GoVersion are filled from build info when left empty.
	GitSHA    string `json:"git_sha"`
	GoVersion string `json:"go_version"`
	// Seed is the run's master random seed.
	Seed int64 `json:"seed"`
	// Config is the full run configuration, marshaled verbatim.
	Config any `json:"config,omitempty"`
	// Args preserves the raw command line.
	Args []string `json:"args,omitempty"`
}

// GitSHA returns the VCS revision recorded in the build info (exact for
// `go build`, "unknown" under `go run` or when built outside a checkout).
// A "+dirty" suffix marks uncommitted modifications.
func GitSHA() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	sha, dirty := "", false
	for _, st := range bi.Settings {
		switch st.Key {
		case "vcs.revision":
			sha = st.Value
		case "vcs.modified":
			dirty = st.Value == "true"
		}
	}
	if sha == "" {
		return "unknown"
	}
	if dirty {
		sha += "+dirty"
	}
	return sha
}

// RunDir is an open run-artifact directory.
type RunDir struct {
	// Dir is the directory path (created by OpenRunDir).
	Dir string
}

// OpenRunDir creates dir (and parents) and returns the artifact writer.
func OpenRunDir(dir string) (*RunDir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: run dir: %w", err)
	}
	return &RunDir{Dir: dir}, nil
}

// WriteManifest writes manifest.json, filling GitSHA and GoVersion from
// the build when the caller left them empty.
func (rd *RunDir) WriteManifest(m Manifest) error {
	if rd == nil {
		return nil
	}
	if m.GitSHA == "" {
		m.GitSHA = GitSHA()
	}
	if m.GoVersion == "" {
		m.GoVersion = runtime.Version()
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(rd.Dir, "manifest.json"), append(data, '\n'), 0o644)
}

// WriteEpochs writes the per-epoch breakdown rows as epochs.jsonl, one
// JSON object per line — the same row schema the JSONL trace emits.
func (rd *RunDir) WriteEpochs(rows []EpochMetrics) error {
	if rd == nil {
		return nil
	}
	f, err := os.Create(filepath.Join(rd.Dir, "epochs.jsonl"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, m := range rows {
		if err := enc.Encode(m); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// WritePlan writes the executed-plan profile as plan.json. A nil plan (the
// run was not profiled) writes nothing.
func (rd *RunDir) WritePlan(p *PlanStats) error {
	if rd == nil || p == nil {
		return nil
	}
	data, err := p.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(rd.Dir, "plan.json"), append(data, '\n'), 0o644)
}

// WriteMetrics snapshots the registry into metrics.prom — the same bytes a
// final /metrics scrape would have returned.
func (rd *RunDir) WriteMetrics(r *Registry) error {
	if rd == nil {
		return nil
	}
	f, err := os.Create(filepath.Join(rd.Dir, "metrics.prom"))
	if err != nil {
		return err
	}
	if err := r.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
