package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"corgipile/internal/stats"
)

// jsonlSink serializes events to one writer, one JSON object per line.
type jsonlSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func (s *jsonlSink) emit(v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	// Encode appends the newline; errors are deliberately dropped — losing
	// a trace line must never fail a training run.
	_ = s.enc.Encode(v)
	s.mu.Unlock()
}

// StreamTo attaches a JSONL event sink: every span end, epoch breakdown,
// and explicit snapshot is written to w as one JSON object per line. It
// returns the registry.
func (r *Registry) StreamTo(w io.Writer) *Registry {
	if r == nil || w == nil {
		return r
	}
	sink := &jsonlSink{enc: json.NewEncoder(w)}
	r.mu.Lock()
	r.sink = sink
	r.mu.Unlock()
	return r
}

func (r *Registry) getSink() *jsonlSink {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sink
}

// spanEvent is the JSONL record of one completed span.
type spanEvent struct {
	Ev     string  `json:"ev"`
	Name   string  `json:"name"`
	ID     int64   `json:"id"`
	Parent int64   `json:"parent,omitempty"`
	Start  float64 `json:"start_s"`
	Dur    float64 `json:"dur_s"`
}

func (r *Registry) emitSpan(s *Span, dur time.Duration) {
	sink := r.getSink()
	if sink == nil {
		return
	}
	sink.emit(spanEvent{
		Ev: "span", Name: s.name, ID: s.id, Parent: s.parent,
		Start: s.start.Seconds(), Dur: dur.Seconds(),
	})
}

// EmitEpoch streams one epoch's breakdown as a JSONL event — the
// machine-readable twin of the WriteEpochTable rendering.
func (r *Registry) EmitEpoch(m EpochMetrics) {
	sink := r.getSink()
	if sink == nil {
		return
	}
	sink.emit(struct {
		Ev string `json:"ev"`
		EpochMetrics
	}{"epoch", m})
}

// EmitEvent streams a named point event with arbitrary fields (e.g.
// "dist.worker.crash" with the worker index, or a convergence-diagnostics
// verdict). Field keys are merged into the event object; "ev" and "name"
// are reserved. No-op without a sink, like every emitter.
func (r *Registry) EmitEvent(name string, fields map[string]any) {
	sink := r.getSink()
	if sink == nil {
		return
	}
	ev := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		ev[k] = v
	}
	ev["ev"] = "event"
	ev["name"] = name
	sink.emit(ev)
}

// EmitSnapshot streams the registry's full current state under a label
// (e.g. "final"), for offline analysis of totals.
func (r *Registry) EmitSnapshot(label string) {
	sink := r.getSink()
	if sink == nil {
		return
	}
	s := r.Snapshot()
	hists := make(map[string]map[string]any, len(s.Hists))
	for k, h := range s.Hists {
		hists[k] = map[string]any{
			"count": h.Count, "sum_s": h.Sum.Seconds(),
			"min_s": h.Min.Seconds(), "max_s": h.Max.Seconds(),
		}
	}
	sink.emit(map[string]any{
		"ev": "snapshot", "label": label,
		"counters": s.Counters, "gauges": s.Gauges, "hists": hists,
	})
}

// EpochMetrics is one epoch's cross-layer breakdown — where the epoch's
// time went, assembled from the well-known metric names. It is the row type
// of both exporters.
type EpochMetrics struct {
	// Epoch is 1-based.
	Epoch int `json:"epoch"`
	// Seconds is the epoch's duration (simulated when the registry clock is
	// the simulation clock, real otherwise).
	Seconds float64 `json:"epoch_s"`
	// IOSeconds is time spent in device reads and writes.
	IOSeconds float64 `json:"io_s"`
	// BytesRead counts bytes read from the device (cache hits included).
	BytesRead int64 `json:"bytes_read"`
	// ReadOps and Seeks count read accesses and those that paid a seek.
	ReadOps int64 `json:"read_ops"`
	Seeks   int64 `json:"seeks"`
	// SeekFraction is Seeks/ReadOps — ~0 sequential, ~1 random.
	SeekFraction float64 `json:"seek_fraction"`
	// CacheHitRate is the fraction of read bytes served by the OS cache.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// ShuffleSeconds is time spent filling shuffle buffers (block reads plus
	// tuple copies and in-buffer shuffling).
	ShuffleSeconds float64 `json:"shuffle_s"`
	// Refills counts shuffle-buffer refill operations.
	Refills int64 `json:"refills"`
	// GradSeconds is gradient-compute time.
	GradSeconds float64 `json:"grad_s"`
	// Tuples is the number of training examples consumed.
	Tuples int64 `json:"tuples"`
	// AvgLoss is the epoch's mean streaming loss.
	AvgLoss float64 `json:"avg_loss"`

	// RefillP50S, RefillP95S and RefillP99S are quantiles (seconds) of the
	// epoch's shuffle-buffer refill durations, estimated from the refill
	// span histogram's per-epoch bucket delta. They are excluded from the
	// JSON encoding so existing JSONL traces stay byte-identical; the
	// epoch-table exporter and the live telemetry plane render them.
	RefillP50S float64 `json:"-"`
	RefillP95S float64 `json:"-"`
	RefillP99S float64 `json:"-"`
}

// EpochFromDelta assembles an epoch breakdown row from a snapshot delta
// covering exactly that epoch, plus the epoch's duration and loss (which
// the training loop knows directly).
func EpochFromDelta(epoch int, seconds, avgLoss float64, d Snapshot) EpochMetrics {
	m := EpochMetrics{
		Epoch:          epoch,
		Seconds:        seconds,
		IOSeconds:      d.CounterDur(IOTimeNanos).Seconds(),
		BytesRead:      d.Counters[IOReadBytes],
		ReadOps:        d.Counters[IOReadOps],
		Seeks:          d.Counters[IOSeeks],
		ShuffleSeconds: d.CounterDur(ShuffleFillNanos).Seconds(),
		Refills:        d.Counters[ShuffleRefills],
		GradSeconds:    d.CounterDur(SGDGradNanos).Seconds(),
		Tuples:         d.Counters[SGDTuples],
		AvgLoss:        avgLoss,
	}
	if m.ReadOps > 0 {
		m.SeekFraction = float64(m.Seeks) / float64(m.ReadOps)
	}
	if m.BytesRead > 0 {
		m.CacheHitRate = float64(d.Counters[IOCacheHitBytes]) / float64(m.BytesRead)
	}
	if h, ok := d.Hists[SpanRefill]; ok && h.Count > 0 {
		m.RefillP50S = h.Quantile(0.50).Seconds()
		m.RefillP95S = h.Quantile(0.95).Seconds()
		m.RefillP99S = h.Quantile(0.99).Seconds()
	}
	return m
}

// WriteEpochTable renders epoch breakdown rows as an aligned text table —
// the human-readable exporter, built on internal/stats. Alongside the
// per-epoch totals it prints the refill-duration histogram quantiles
// (p50/p95/p99), so tail latencies are visible next to the sums.
func WriteEpochTable(w io.Writer, title string, rows []EpochMetrics) error {
	t := stats.NewTable(title,
		"epoch", "time", "io", "read MB", "seek%", "cache%",
		"shuffle", "fill p50", "p95", "p99", "grad", "loss", "tuples")
	for _, m := range rows {
		t.AddRow(
			m.Epoch,
			fmtSeconds(m.Seconds),
			fmtSeconds(m.IOSeconds),
			fmt.Sprintf("%.2f", float64(m.BytesRead)/(1<<20)),
			fmt.Sprintf("%.1f", m.SeekFraction*100),
			fmt.Sprintf("%.1f", m.CacheHitRate*100),
			fmtSeconds(m.ShuffleSeconds),
			fmtSeconds(m.RefillP50S),
			fmtSeconds(m.RefillP95S),
			fmtSeconds(m.RefillP99S),
			fmtSeconds(m.GradSeconds),
			fmt.Sprintf("%.5f", m.AvgLoss),
			m.Tuples,
		)
	}
	return t.Write(w)
}

// WriteCounterTable renders the registry's counters and gauges, sorted by
// name — the "totals" companion to the per-epoch table.
func (r *Registry) WriteCounterTable(w io.Writer, title string) error {
	s := r.Snapshot()
	t := stats.NewTable(title, "metric", "value")
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		t.AddRow(k, fmt.Sprintf("%d", s.Counters[k]))
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		t.AddRow(k, fmt.Sprintf("%.6g", s.Gauges[k]))
	}
	return t.Write(w)
}

// fmtSeconds renders a duration in seconds compactly.
func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 0.001:
		return fmt.Sprintf("%.2fms", s*1000)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}
