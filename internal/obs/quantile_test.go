package obs

import (
	"math"
	"testing"
	"time"
)

// TestQuantileTable pins the edge-case behavior of HistSnapshot.Quantile:
// empty histograms and nonsensical q values are 0 (never NaN), a
// single-observation histogram returns its recorded value at every
// quantile, and single-bucket histograms stay clamped inside the recorded
// [Min, Max] envelope.
func TestQuantileTable(t *testing.T) {
	single := HistSnapshot{Count: 1, Min: 7, Max: 7}
	single.Buckets[3] = 1 // [4, 8) ns

	oneBucket := HistSnapshot{Count: 10, Min: 33, Max: 60}
	oneBucket.Buckets[6] = 10 // [32, 64) ns

	subNano := HistSnapshot{Count: 4, Min: 0, Max: 0}
	subNano.Buckets[0] = 4 // [0, 1) ns

	cases := []struct {
		name string
		h    HistSnapshot
		q    float64
		want time.Duration
	}{
		{"empty q=0", HistSnapshot{}, 0, 0},
		{"empty q=0.5", HistSnapshot{}, 0.5, 0},
		{"empty q=1", HistSnapshot{}, 1, 0},
		{"empty q=NaN", HistSnapshot{}, math.NaN(), 0},
		{"NaN q on data", oneBucket, math.NaN(), 0},
		{"single obs q=0", single, 0, 7},
		{"single obs q=0.5", single, 0.5, 7},
		{"single obs q=0.99", single, 0.99, 7},
		{"single obs q=1", single, 1, 7},
		{"one bucket q<=0 clamps to Min", oneBucket, -1, 33},
		{"one bucket q>=1 clamps to Max", oneBucket, 2, 60},
		{"sub-nanosecond bucket q=0.5", subNano, 0.5, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.h.Quantile(tc.q); got != tc.want {
				t.Fatalf("Quantile(%g) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}

	// Every quantile of a single-bucket histogram must land inside its
	// envelope, whatever the interpolation does inside the bucket.
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := oneBucket.Quantile(q)
		if got < oneBucket.Min || got > oneBucket.Max {
			t.Fatalf("Quantile(%g) = %v escaped [%v, %v]", q, got, oneBucket.Min, oneBucket.Max)
		}
	}
}
