package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventLogRecordAndOrder(t *testing.T) {
	el := NewEventLog(8)
	for i := 0; i < 5; i++ {
		el.Emit(EvStatementStart, "t1", fmt.Sprintf("stmt %d", i))
	}
	evs := el.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Type != EvStatementStart || ev.Trace != "t1" {
			t.Fatalf("event %d = %+v, want type=%q trace=t1", i, ev, EvStatementStart)
		}
		if ev.TimeMs == 0 {
			t.Fatalf("event %d missing wall-clock stamp", i)
		}
	}
}

func TestEventLogRingOverflow(t *testing.T) {
	el := NewEventLog(4) // exact power of two: ring keeps the last 4
	for i := 0; i < 10; i++ {
		el.Emit(EvJobQueued, "", fmt.Sprintf("job %d", i))
	}
	evs := el.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d surviving events, want ring capacity 4", len(evs))
	}
	for i, ev := range evs {
		want := int64(7 + i) // seqs 7..10 survive
		if ev.Seq != want {
			t.Fatalf("survivor %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestEventLogRoundsToPowerOfTwo(t *testing.T) {
	el := NewEventLog(5)
	if len(el.ring) != 8 || len(el.spans) != 8 {
		t.Fatalf("rings sized %d/%d, want 8 (5 rounded up)", len(el.ring), len(el.spans))
	}
	if el = NewEventLog(0); len(el.ring) != DefaultEventLogSize {
		t.Fatalf("default ring size %d, want %d", len(el.ring), DefaultEventLogSize)
	}
}

func TestEventLogRecordStamps(t *testing.T) {
	el := NewEventLog(8)
	got := el.Record(Event{Type: EvCheckpoint, TimeMs: 42})
	if got.Seq != 1 || got.TimeMs != 42 {
		t.Fatalf("Record returned %+v, want seq=1 with caller's t_ms=42 kept", got)
	}
}

func TestEventLogSpans(t *testing.T) {
	el := NewEventLog(8)
	start := time.Now()
	el.RecordSpan("t1", EvSpanQueue, start, 5*time.Millisecond)
	sp := el.StartSpan("t1", EvSpanEpoch)
	if d := sp.End(); d < 0 {
		t.Fatalf("span duration %v negative", d)
	}
	spans := el.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != EvSpanQueue || spans[0].DurMs != 5 {
		t.Fatalf("span 0 = %+v, want queue/5ms", spans[0])
	}
	if spans[1].Name != EvSpanEpoch || spans[1].Trace != "t1" {
		t.Fatalf("span 1 = %+v, want epoch span on trace t1", spans[1])
	}
	if spans[0].Seq >= spans[1].Seq {
		t.Fatalf("spans out of order: %d then %d", spans[0].Seq, spans[1].Seq)
	}
}

func TestEventLogNilSafety(t *testing.T) {
	var el *EventLog
	el.Emit(EvPromote, "", "x")
	el.Record(Event{Type: EvCheckpoint})
	el.RecordSpan("", EvSpanInstall, time.Now(), time.Second)
	el.SetSlowThreshold(time.Second)
	if el.Slow(time.Hour) {
		t.Fatal("nil log reported a slow statement")
	}
	if got := el.Events(); got != nil {
		t.Fatalf("nil log Events() = %v, want nil", got)
	}
	if got := el.Spans(); got != nil {
		t.Fatalf("nil log Spans() = %v, want nil", got)
	}
	if el.StreamTo(io.Discard) != nil {
		t.Fatal("nil log StreamTo returned non-nil")
	}
	sp := el.StartSpan("t", "n")
	if d := sp.End(); d != 0 {
		t.Fatalf("nil-log span duration %v, want 0", d)
	}
	// The zero-value span must also be inert.
	var zero EventSpan
	if d := zero.End(); d != 0 {
		t.Fatalf("zero-value span duration %v, want 0", d)
	}
}

func TestEventLogSlowThreshold(t *testing.T) {
	el := NewEventLog(8)
	if el.Slow(time.Hour) {
		t.Fatal("disarmed log reported slow")
	}
	el.SetSlowThreshold(10 * time.Millisecond)
	if !el.Slow(10 * time.Millisecond) {
		t.Fatal("duration equal to threshold not reported slow")
	}
	if el.Slow(9 * time.Millisecond) {
		t.Fatal("duration under threshold reported slow")
	}
	el.SetSlowThreshold(0)
	if el.Slow(time.Hour) {
		t.Fatal("disarming did not stick")
	}
}

func TestEventLogSink(t *testing.T) {
	var buf bytes.Buffer
	el := NewEventLog(8).StreamTo(&buf)
	el.Emit(EvReplConnect, "t9", "remote=1.2.3.4")
	el.RecordSpan("t9", EvSpanStatement, time.Now(), 3*time.Millisecond)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink wrote %d lines, want 2: %q", len(lines), buf.String())
	}
	var ev struct {
		Ev    string `json:"ev"`
		Type  string `json:"type"`
		Trace string `json:"trace"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Ev != "event" || ev.Type != EvReplConnect || ev.Trace != "t9" {
		t.Fatalf("line 0 = %+v, want ev=event type=%s trace=t9", ev, EvReplConnect)
	}
	var sp struct {
		Ev    string  `json:"ev"`
		Name  string  `json:"name"`
		DurMs float64 `json:"dur_ms"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &sp); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if sp.Ev != "tracespan" || sp.Name != EvSpanStatement || sp.DurMs != 3 {
		t.Fatalf("line 1 = %+v, want ev=tracespan name=statement dur=3", sp)
	}
}

// TestEventLogConcurrent hammers the ring from many goroutines; run with
// -race this pins the lock-free append/snapshot protocol.
func TestEventLogConcurrent(t *testing.T) {
	el := NewEventLog(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				el.Emit(EvJobRunning, fmt.Sprintf("g%d", g), "")
				el.RecordSpan(fmt.Sprintf("g%d", g), EvSpanEpoch, time.Now(), time.Microsecond)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			el.Events()
			el.Spans()
		}
	}()
	wg.Wait()
	<-done
	evs := el.Events()
	if len(evs) != 64 {
		t.Fatalf("ring holds %d events, want full capacity 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestServeProbes exercises /healthz and /readyz: 200 "ok" while the
// probe passes, 503 with the reason once it fails, and always-200 when
// no probe is attached.
func TestServeProbes(t *testing.T) {
	var mu sync.Mutex
	var readyErr error
	srv, err := Serve(ServeConfig{
		Addr:        "127.0.0.1:0",
		Registry:    New(),
		SampleEvery: -1,
		Health:      func() error { return nil },
		Ready: func() error {
			mu.Lock()
			defer mu.Unlock()
			return readyErr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, strings.TrimSpace(string(body))
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || body != "ok" {
		t.Fatalf("/readyz = %d %q, want 200 ok", code, body)
	}

	mu.Lock()
	readyErr = fmt.Errorf("replication lag 12 > max 4")
	mu.Unlock()
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "replication lag 12") {
		t.Fatalf("/readyz = %d %q, want 503 with lag reason", code, body)
	}
	// Health is independent of readiness.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d after readiness failure, want 200", code)
	}
}
