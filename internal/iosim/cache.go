package iosim

// pageCache models the operating-system page cache.
//
// The paper clears the OS cache before each experiment but observes
// (Section 7.3.4) that datasets smaller than RAM are fully cached after the
// first epoch, making later epochs run at memory speed. Because the storage
// engine always reads whole blocks at stable offsets, residency is tracked
// per extent (offset-keyed), which is exact for this workload: a read hits
// only if that extent's bytes were actually read or written before.
// Eviction is LRU by bytes.
type pageCache struct {
	capacity int64 // maximum resident bytes
	resident map[int64]*cacheNode
	total    int64
	head     *cacheNode // most recently used
	tail     *cacheNode // least recently used
}

type cacheNode struct {
	off        int64
	n          int64
	prev, next *cacheNode
}

// newPageCache returns a cache with the given capacity in bytes. A
// capacity of zero disables caching. The second parameter is retained for
// call-site compatibility and ignored.
func newPageCache(capacityBytes, _ int64) *pageCache {
	return &pageCache{
		capacity: capacityBytes,
		resident: make(map[int64]*cacheNode),
	}
}

// span records a read of the extent [off, off+n) and reports how many of
// its bytes were already resident. The extent becomes resident
// (read-through), evicting least-recently-used extents as needed. Extents
// larger than the whole cache are not admitted (they would only evict
// everything for no future benefit).
func (c *pageCache) span(off, n int64) (hitBytes int64) {
	if c == nil || c.capacity == 0 || n <= 0 {
		return 0
	}
	if node, ok := c.resident[off]; ok && node.n >= n {
		c.moveToFront(node)
		return n
	} else if ok {
		// Same offset, shorter cached extent: count the overlap and grow.
		hitBytes = node.n
		c.total += n - node.n
		node.n = n
		c.moveToFront(node)
		c.evictOverflow()
		return hitBytes
	}
	if n > c.capacity {
		return 0
	}
	node := &cacheNode{off: off, n: n}
	c.resident[off] = node
	c.total += n
	c.pushFront(node)
	c.evictOverflow()
	return 0
}

// invalidate drops every resident extent, modelling `echo 3 > drop_caches`.
func (c *pageCache) invalidate() {
	if c == nil {
		return
	}
	c.resident = make(map[int64]*cacheNode)
	c.total = 0
	c.head, c.tail = nil, nil
}

func (c *pageCache) evictOverflow() {
	for c.total > c.capacity && c.tail != nil {
		c.evict()
	}
}

func (c *pageCache) pushFront(n *cacheNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *pageCache) moveToFront(n *cacheNode) {
	if c.head == n {
		return
	}
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if c.tail == n {
		c.tail = n.prev
	}
	c.pushFront(n)
}

func (c *pageCache) evict() {
	n := c.tail
	if n == nil {
		return
	}
	if n.prev != nil {
		n.prev.next = nil
	}
	c.tail = n.prev
	if c.head == n {
		c.head = nil
	}
	delete(c.resident, n.off)
	c.total -= n.n
}

// len reports the number of resident extents (for tests).
func (c *pageCache) len() int { return len(c.resident) }
