package iosim

import (
	"errors"
	"testing"
	"time"

	"corgipile/internal/obs"
)

func TestZeroFaultPlanIsNoOp(t *testing.T) {
	clock := NewClock()
	plain := NewDevice(SSD, clock)
	faulty := NewDevice(SSD, NewClock()).WithFaults(FaultPlan{})
	for i := int64(0); i < 100; i++ {
		cp := plain.ReadAt(i*4096, 4096)
		cf, err := faulty.TryReadAt(i*4096, 4096)
		if err != nil {
			t.Fatalf("zero plan injected an error: %v", err)
		}
		if cp != cf {
			t.Fatalf("read %d: cost %v with zero plan, want %v", i, cf, cp)
		}
	}
	if s := faulty.Stats(); s.Faults != 0 || s.Stragglers != 0 {
		t.Fatalf("zero plan counted faults: %+v", s)
	}
}

func TestTryReadAtMatchesReadAtWithoutPlan(t *testing.T) {
	a := NewDevice(HDD, NewClock())
	b := NewDevice(HDD, NewClock())
	offs := []int64{0, 8192, 4096, 1 << 20, 4096}
	for _, off := range offs {
		ca := a.ReadAt(off, 4096)
		cb, err := b.TryReadAt(off, 4096)
		if err != nil || ca != cb {
			t.Fatalf("TryReadAt(%d) = (%v,%v), ReadAt = %v", off, cb, err, ca)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestTransientErrorsAreDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 7, ReadErrorProb: 0.2, ErrorLatency: time.Millisecond}
	run := func() ([]bool, time.Duration) {
		clock := NewClock()
		dev := NewDevice(SSD, clock).WithFaults(plan)
		var outcomes []bool
		for i := int64(0); i < 200; i++ {
			_, err := dev.TryReadAt(i*4096, 4096)
			outcomes = append(outcomes, err != nil)
			if err != nil && !errors.Is(err, ErrTransient) {
				t.Fatalf("injected error %v does not wrap ErrTransient", err)
			}
		}
		return outcomes, clock.Now()
	}
	o1, t1 := run()
	o2, t2 := run()
	if t1 != t2 {
		t.Fatalf("clock traces differ: %v vs %v", t1, t2)
	}
	nFail := 0
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("fault sequence diverged at read %d", i)
		}
		if o1[i] {
			nFail++
		}
	}
	if nFail == 0 {
		t.Fatal("20% error probability injected nothing in 200 reads")
	}
}

func TestErrorBurst(t *testing.T) {
	// Probability 1 with burst 3: every read fails, bursts chain.
	dev := NewDevice(SSD, NewClock()).WithFaults(
		FaultPlan{Seed: 1, ReadErrorProb: 1, ErrorBurst: 3})
	for i := int64(0); i < 6; i++ {
		if _, err := dev.TryReadAt(0, 4096); err == nil {
			t.Fatalf("read %d should fail under prob-1 plan", i)
		}
	}
	if got := dev.Stats().Faults; got != 6 {
		t.Fatalf("Faults = %d, want 6", got)
	}
}

func TestFailedReadChargesErrorLatencyOnly(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(SSD, clock).WithFaults(
		FaultPlan{Seed: 1, ReadErrorProb: 1, ErrorLatency: 5 * time.Millisecond})
	if _, err := dev.TryReadAt(0, 1<<20); err == nil {
		t.Fatal("expected injected failure")
	}
	if clock.Now() != 5*time.Millisecond {
		t.Fatalf("failed read charged %v, want the 5ms error latency", clock.Now())
	}
	// The failed read must not move the head or count as a served read.
	s := dev.Stats()
	if s.Reads != 0 || s.BytesRead != 0 {
		t.Fatalf("failed read counted as served: %+v", s)
	}
}

func TestStragglerChargesExtraLatency(t *testing.T) {
	plan := FaultPlan{Seed: 3, StragglerProb: 1, StragglerDelay: 50 * time.Millisecond}
	clock := NewClock()
	dev := NewDevice(SSD, clock).WithFaults(plan)
	base := NewDevice(SSD, NewClock()).ReadAt(0, 4096)
	cost, err := dev.TryReadAt(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if want := base + 50*time.Millisecond; cost != want {
		t.Fatalf("straggler read cost %v, want %v", cost, want)
	}
	if dev.Stats().Stragglers != 1 {
		t.Fatalf("Stragglers = %d, want 1", dev.Stats().Stragglers)
	}
}

func TestFaultObsReporting(t *testing.T) {
	reg := obs.New()
	dev := NewDevice(SSD, NewClock()).WithObs(reg).WithFaults(
		FaultPlan{Seed: 1, ReadErrorProb: 1})
	dev.TryReadAt(0, 4096)
	if reg.Counter(obs.IOFaultOps) != 1 {
		t.Fatalf("obs %s = %d, want 1", obs.IOFaultOps, reg.Counter(obs.IOFaultOps))
	}
}

func TestBlockCorrupt(t *testing.T) {
	dev := NewDevice(SSD, NewClock()).WithFaults(FaultPlan{CorruptBlocks: []int{2, 5}})
	for i, want := range map[int]bool{0: false, 2: true, 5: true, 6: false} {
		if got := dev.BlockCorrupt(i); got != want {
			t.Fatalf("BlockCorrupt(%d) = %v, want %v", i, got, want)
		}
	}
	if NewDevice(SSD, NewClock()).BlockCorrupt(2) {
		t.Fatal("device without plan reported corrupt block")
	}
}

func TestParseFaultPlanRoundTrip(t *testing.T) {
	spec := "seed=7,read_err=0.01,burst=3,err_ms=2,straggler=0.005,straggler_ms=50,corrupt=3;17"
	p, err := ParseFaultPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.ReadErrorProb != 0.01 || p.ErrorBurst != 3 ||
		p.ErrorLatency != 2*time.Millisecond || p.StragglerProb != 0.005 ||
		p.StragglerDelay != 50*time.Millisecond ||
		len(p.CorruptBlocks) != 2 || p.CorruptBlocks[0] != 3 || p.CorruptBlocks[1] != 17 {
		t.Fatalf("parsed plan wrong: %+v", p)
	}
	if got := p.String(); got != spec {
		t.Fatalf("String() = %q, want %q", got, spec)
	}
	back, err := ParseFaultPlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != spec {
		t.Fatalf("round trip changed plan: %q", back.String())
	}
}

func TestParseFaultPlanErrors(t *testing.T) {
	for _, spec := range []string{"bogus=1", "read_err", "read_err=x", "corrupt=-1", "corrupt=a"} {
		if _, err := ParseFaultPlan(spec); err == nil {
			t.Fatalf("spec %q should fail to parse", spec)
		}
	}
	p, err := ParseFaultPlan("  ")
	if err != nil || p.Enabled() {
		t.Fatalf("blank spec should give disabled plan, got %+v, %v", p, err)
	}
	if p.String() != "none" {
		t.Fatalf("zero plan String() = %q, want none", p.String())
	}
}
