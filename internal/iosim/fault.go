package iosim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ErrTransient reports a read failure that a retry may resolve: a dropped
// request, a timed-out command, a recoverable media error. Every transient
// fault injected by a FaultPlan wraps this sentinel, so callers classify
// with errors.Is(err, iosim.ErrTransient).
var ErrTransient = errors.New("iosim: transient read error")

// FaultPlan configures deterministic fault injection on a Device. All
// randomness derives from Seed, so a given plan produces the same fault
// sequence — and therefore the same simulated-clock trace — on every run.
// The zero value injects nothing and costs nothing.
//
// Three fault classes are modelled:
//
//   - Transient read errors (ReadErrorProb / ErrorBurst): Device.TryReadAt
//     fails with an error wrapping ErrTransient. Each failed attempt
//     charges ErrorLatency to the clock, modelling the timed-out request.
//   - Straggler reads (StragglerProb / StragglerDelay): the read succeeds
//     but pays an additional latency spike, modelling a device stall or a
//     contended disk.
//   - Corrupt blocks (CorruptBlocks): the listed block indices return
//     payloads with a flipped bit, tripping the storage layer's CRC check
//     (storage.ErrCorrupt). Corruption is permanent: retries cannot clear
//     it; only a degrade policy (shuffle.SkipCorrupt) can train past it.
type FaultPlan struct {
	// Seed seeds the injector's random choices (0 behaves like 1).
	Seed int64
	// ReadErrorProb is the per-read probability of starting a transient
	// error burst.
	ReadErrorProb float64
	// ErrorBurst is the number of consecutive reads that fail once a burst
	// starts (default 1), modelling error storms rather than isolated blips.
	ErrorBurst int
	// ErrorLatency is the simulated cost of one failed read attempt
	// (default: the device profile's seek latency).
	ErrorLatency time.Duration
	// StragglerProb is the per-read probability of a latency spike.
	StragglerProb float64
	// StragglerDelay is the extra latency a straggler read pays
	// (default 20ms).
	StragglerDelay time.Duration
	// CorruptBlocks lists storage block indices whose payload is returned
	// bit-flipped (interpreted by storage.Table.ReadBlock).
	CorruptBlocks []int
}

// Enabled reports whether the plan injects any fault at all.
func (p FaultPlan) Enabled() bool {
	return p.ReadErrorProb > 0 || p.StragglerProb > 0 || len(p.CorruptBlocks) > 0
}

// faultInjector is the runtime state of a FaultPlan attached to a Device.
// It is guarded by the owning Device's mutex.
type faultInjector struct {
	plan      FaultPlan
	rng       *rand.Rand
	burstLeft int
	corrupt   map[int]bool
}

func newFaultInjector(p FaultPlan) *faultInjector {
	if p.ErrorBurst < 1 {
		p.ErrorBurst = 1
	}
	if p.StragglerDelay <= 0 {
		p.StragglerDelay = 20 * time.Millisecond
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	inj := &faultInjector{plan: p, rng: rand.New(rand.NewSource(seed))}
	if len(p.CorruptBlocks) > 0 {
		inj.corrupt = make(map[int]bool, len(p.CorruptBlocks))
		for _, b := range p.CorruptBlocks {
			inj.corrupt[b] = true
		}
	}
	return inj
}

// readError decides whether the next checked read fails, consuming exactly
// one random draw per call so the fault sequence is independent of read
// offsets and sizes.
func (inj *faultInjector) readError() bool {
	if inj.burstLeft > 0 {
		inj.burstLeft--
		return true
	}
	if inj.plan.ReadErrorProb > 0 && inj.rng.Float64() < inj.plan.ReadErrorProb {
		inj.burstLeft = inj.plan.ErrorBurst - 1
		return true
	}
	return false
}

// straggle decides whether a successful read pays a latency spike.
func (inj *faultInjector) straggle() (time.Duration, bool) {
	if inj.plan.StragglerProb > 0 && inj.rng.Float64() < inj.plan.StragglerProb {
		return inj.plan.StragglerDelay, true
	}
	return 0, false
}

// errorCost is the simulated time one failed read attempt charges.
func (inj *faultInjector) errorCost(prof Profile) time.Duration {
	if inj.plan.ErrorLatency > 0 {
		return inj.plan.ErrorLatency
	}
	return prof.SeekLatency
}

// ParseFaultPlan parses a compact comma-separated fault specification, the
// format of the -faults command-line flags:
//
//	seed=7,read_err=0.01,burst=3,err_ms=2,straggler=0.005,straggler_ms=50,corrupt=3;17
//
// Unknown keys are rejected. An empty spec yields the zero plan.
func ParseFaultPlan(spec string) (FaultPlan, error) {
	var p FaultPlan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("iosim: bad fault spec field %q (want key=value)", field)
		}
		switch key {
		case "corrupt":
			for _, s := range strings.Split(val, ";") {
				b, err := strconv.Atoi(s)
				if err != nil || b < 0 {
					return p, fmt.Errorf("iosim: bad corrupt block %q", s)
				}
				p.CorruptBlocks = append(p.CorruptBlocks, b)
			}
			sort.Ints(p.CorruptBlocks)
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return p, fmt.Errorf("iosim: bad fault spec value %q for %q", val, key)
		}
		switch key {
		case "seed":
			p.Seed = int64(f)
		case "read_err":
			p.ReadErrorProb = f
		case "burst":
			p.ErrorBurst = int(f)
		case "err_ms":
			p.ErrorLatency = time.Duration(f * float64(time.Millisecond))
		case "straggler":
			p.StragglerProb = f
		case "straggler_ms":
			p.StragglerDelay = time.Duration(f * float64(time.Millisecond))
		default:
			return p, fmt.Errorf("iosim: unknown fault spec key %q", key)
		}
	}
	return p, nil
}

// String renders the plan in the ParseFaultPlan format.
func (p FaultPlan) String() string {
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	if p.Seed != 0 {
		add(fmt.Sprintf("seed=%d", p.Seed))
	}
	if p.ReadErrorProb > 0 {
		add(fmt.Sprintf("read_err=%g", p.ReadErrorProb))
	}
	if p.ErrorBurst > 1 {
		add(fmt.Sprintf("burst=%d", p.ErrorBurst))
	}
	if p.ErrorLatency > 0 {
		add(fmt.Sprintf("err_ms=%g", float64(p.ErrorLatency)/float64(time.Millisecond)))
	}
	if p.StragglerProb > 0 {
		add(fmt.Sprintf("straggler=%g", p.StragglerProb))
	}
	if p.StragglerDelay > 0 && p.StragglerProb > 0 {
		add(fmt.Sprintf("straggler_ms=%g", float64(p.StragglerDelay)/float64(time.Millisecond)))
	}
	if len(p.CorruptBlocks) > 0 {
		ss := make([]string, len(p.CorruptBlocks))
		for i, b := range p.CorruptBlocks {
			ss[i] = strconv.Itoa(b)
		}
		add("corrupt=" + strings.Join(ss, ";"))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}
