package iosim

import (
	"math"
	"testing"
	"time"
)

func TestSequentialReadNoSeekAfterFirst(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(HDD, clock)
	dev.ReadAt(0, 1<<20)
	dev.ReadAt(1<<20, 1<<20) // contiguous
	dev.ReadAt(2<<20, 1<<20) // contiguous
	if got := dev.Stats().Seeks; got != 1 {
		t.Fatalf("seeks = %d, want 1 (only the initial positioning)", got)
	}
}

func TestRandomReadsSeekEveryTime(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(HDD, clock)
	offsets := []int64{0, 100 << 20, 10 << 20, 50 << 20}
	for _, off := range offsets {
		dev.ReadAt(off, 1<<20)
	}
	if got := dev.Stats().Seeks; got != int64(len(offsets)) {
		t.Fatalf("seeks = %d, want %d", got, len(offsets))
	}
}

func TestReadCostMatchesModel(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(HDD, clock)
	n := int64(140e6) // exactly one second of transfer at 140 MB/s
	cost := dev.ReadAt(0, n)
	want := HDD.SeekLatency + time.Second
	if diff := cost - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("cost = %v, want ~%v", cost, want)
	}
	if clock.Now() != cost {
		t.Fatalf("clock advanced %v, want %v", clock.Now(), cost)
	}
}

func TestHDDRandomTupleAccessMuchSlowerThanSequential(t *testing.T) {
	// Reading 10k tuples of 1 KiB each randomly vs sequentially: the random
	// plan must be orders of magnitude slower on HDD.
	seqClock, rndClock := NewClock(), NewClock()
	seq := NewDevice(HDD, seqClock)
	rnd := NewDevice(HDD, rndClock)
	const tuples, size = 10000, 1024
	for i := int64(0); i < tuples; i++ {
		seq.ReadAt(i*size, size)
		// Random: stride the accesses so none are contiguous.
		rnd.ReadAt(((i*7919)%tuples)*size*2, size)
	}
	ratio := rndClock.Now().Seconds() / seqClock.Now().Seconds()
	if ratio < 100 {
		t.Fatalf("random/sequential time ratio = %.1f, want >= 100 on HDD", ratio)
	}
}

func TestLargeBlockRandomAccessApproachesSequential(t *testing.T) {
	// Appendix A, Figure 20: with 10 MB blocks, random block access reaches
	// nearly sequential throughput.
	for _, p := range []Profile{HDD, SSD} {
		seqTP := SequentialReadThroughput(p, 1<<30)
		rndTP := RandomBlockReadThroughput(p, 1<<30, 10<<20)
		if rndTP < 0.85*seqTP {
			t.Errorf("%s: random 10MB-block throughput %.0f < 85%% of sequential %.0f", p.Name, rndTP, seqTP)
		}
		tinyTP := RandomBlockReadThroughput(p, 1<<30, 4<<10)
		if tinyTP > 0.5*seqTP {
			t.Errorf("%s: random 4KB-block throughput %.0f unexpectedly close to sequential %.0f", p.Name, tinyTP, seqTP)
		}
	}
}

func TestThroughputMonotoneInBlockSize(t *testing.T) {
	prev := 0.0
	for bs := int64(64 << 10); bs <= 64<<20; bs *= 2 {
		tp := RandomBlockReadThroughput(HDD, 1<<30, bs)
		if tp < prev {
			t.Fatalf("throughput decreased at block size %d: %.0f < %.0f", bs, tp, prev)
		}
		prev = tp
	}
}

func TestSSDFasterThanHDD(t *testing.T) {
	if SequentialReadThroughput(SSD, 1<<30) <= SequentialReadThroughput(HDD, 1<<30) {
		t.Fatal("SSD sequential throughput should exceed HDD")
	}
	if RandomBlockReadThroughput(SSD, 1<<30, 1<<20) <= RandomBlockReadThroughput(HDD, 1<<30, 1<<20) {
		t.Fatal("SSD random throughput should exceed HDD")
	}
}

func TestCacheMakesSecondPassFast(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(HDD, clock).WithCache(1 << 30)
	const n = 100 << 20
	first := dev.ReadAt(0, n)
	second := dev.ReadAt(0, n)
	if second >= first/10 {
		t.Fatalf("cached read cost %v not much cheaper than cold read %v", second, first)
	}
	if dev.Stats().CacheHitBytes == 0 {
		t.Fatal("expected cache hits on second pass")
	}
}

func TestCacheEviction(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(HDD, clock).WithCache(8 << 20) // 8 MiB cache
	// Read 64 MiB: working set exceeds cache, so re-reading the start misses.
	dev.ReadAt(0, 64<<20)
	hitsBefore := dev.Stats().CacheHitBytes
	dev.ReadAt(0, 1<<20)
	if dev.Stats().CacheHitBytes != hitsBefore {
		t.Fatal("expected a miss re-reading evicted range")
	}
}

func TestDropCaches(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(HDD, clock).WithCache(1 << 30)
	dev.ReadAt(0, 10<<20)
	dev.DropCaches()
	before := dev.Stats().CacheHitBytes
	dev.ReadAt(0, 10<<20)
	if dev.Stats().CacheHitBytes != before {
		t.Fatal("read after DropCaches should not hit")
	}
}

func TestWriteCostsAndPopulatesCache(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(SSD, clock).WithCache(1 << 30)
	wcost := dev.WriteAt(0, 80e6) // 0.1s at 800MB/s
	want := SSD.SeekLatency + 100*time.Millisecond
	if diff := wcost - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("write cost = %v, want ~%v", wcost, want)
	}
	rcost := dev.ReadAt(0, 80e6)
	if rcost >= wcost/5 {
		t.Fatalf("read after write should hit cache: got %v", rcost)
	}
}

func TestReadCostDoesNotAdvanceClock(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(HDD, clock)
	cost := dev.ReadCost(0, 10<<20)
	if cost <= 0 {
		t.Fatal("ReadCost returned non-positive cost")
	}
	if clock.Now() != 0 {
		t.Fatalf("ReadCost advanced the clock to %v", clock.Now())
	}
}

func TestStatsAndReset(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(HDD, clock)
	dev.ReadAt(0, 1000)
	dev.WriteAt(5000, 2000)
	s := dev.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.BytesRead != 1000 || s.BytesWrit != 2000 {
		t.Fatalf("unexpected stats: %+v", s)
	}
	dev.ResetStats()
	if dev.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"hdd", "ssd", "ram"} {
		p, ok := ProfileByName(name)
		if !ok || p.Name == "" {
			t.Fatalf("ProfileByName(%q) failed", name)
		}
	}
	if _, ok := ProfileByName("floppy"); ok {
		t.Fatal("unknown profile should not resolve")
	}
}

func TestZeroLengthOps(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(HDD, clock)
	if dev.ReadAt(0, 0) != 0 || dev.WriteAt(0, 0) != 0 || dev.ReadCost(0, -5) != 0 {
		t.Fatal("zero/negative length operations must cost nothing")
	}
	if clock.Now() != 0 {
		t.Fatal("clock must not advance for empty operations")
	}
}

func TestRAMProfileNearZeroSeek(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(RAM, clock)
	dev.ReadAt(0, 1<<20)
	dev.ReadAt(500<<20, 1<<20)
	if clock.Now() > time.Millisecond {
		t.Fatalf("RAM access too slow: %v", clock.Now())
	}
}

func TestThroughputEdgeCases(t *testing.T) {
	if RandomBlockReadThroughput(HDD, 0, 1<<20) != 0 {
		t.Fatal("zero total should give zero throughput")
	}
	if RandomBlockReadThroughput(HDD, 1<<20, 0) != 0 {
		t.Fatal("zero block size should give zero throughput")
	}
	if math.IsNaN(SequentialReadThroughput(HDD, 1)) {
		t.Fatal("throughput must not be NaN")
	}
}

func TestTraceRecordsPattern(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(HDD, clock)
	trace := dev.WithTrace()
	dev.ReadAt(0, 1<<20)
	dev.ReadAt(1<<20, 1<<20)  // sequential
	dev.ReadAt(50<<20, 1<<20) // seek
	dev.WriteAt(90<<20, 1<<20)
	acc := trace.Accesses()
	if len(acc) != 4 {
		t.Fatalf("recorded %d accesses, want 4", len(acc))
	}
	if acc[1].Seek {
		t.Fatal("sequential read marked as seek")
	}
	if !acc[2].Seek {
		t.Fatal("random read not marked as seek")
	}
	if !acc[3].Write {
		t.Fatal("write not recorded as write")
	}
}

func TestTraceSeekFraction(t *testing.T) {
	clock := NewClock()
	dev := NewDevice(HDD, clock)
	trace := dev.WithTrace()
	// Sequential scan: only the first read seeks.
	for i := int64(0); i < 10; i++ {
		dev.ReadAt(i*(1<<20), 1<<20)
	}
	if f := trace.SeekFraction(); f > 0.15 {
		t.Fatalf("sequential seek fraction = %.2f, want ~0.1", f)
	}
	trace.Reset()
	// Random blocks: every read seeks.
	for i := int64(0); i < 10; i++ {
		dev.ReadAt(((i*7+3)%17)*(5<<20), 1<<20)
	}
	if f := trace.SeekFraction(); f < 0.9 {
		t.Fatalf("random seek fraction = %.2f, want ~1", f)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.record(Access{}) // must not panic
}
