package iosim

import "time"

// Pipeline models a two-stage producer/consumer pipeline with a bounded
// number of in-flight buffers — the double-buffering optimization of the
// paper's TupleShuffle operator (Section 6.3).
//
// The producer (I/O thread) fills buffers; the consumer (SGD thread) drains
// them. With Depth buffers the producer may run at most Depth-1 buffers
// ahead of the consumer. Stage durations are measured serially on the shared
// clock by the caller; Pipeline computes the overlapped completion times so
// the caller can Set the clock to the pipelined value.
//
// Using the classic recurrences, for buffer i with fill time F[i] and
// consume time C[i]:
//
//	fillStart[i] = max(fillEnd[i-1], consEnd[i-depth+1])
//	fillEnd[i]   = fillStart[i] + F[i]
//	consStart[i] = max(fillEnd[i], consEnd[i-1])
//	consEnd[i]   = consStart[i] + C[i]
//
// With Depth == 1 the pipeline degenerates to strictly serial execution.
type Pipeline struct {
	// Depth is the number of buffers (2 for double buffering).
	Depth int

	i        int // index of the next buffer to fill
	fillEnd  []time.Duration
	consEnd  []time.Duration
	base     time.Duration
	started  bool
	lastCons time.Duration
}

// NewPipeline returns a pipeline with the given buffer depth, starting at
// simulated time start.
func NewPipeline(depth int, start time.Duration) *Pipeline {
	if depth < 1 {
		depth = 1
	}
	return &Pipeline{Depth: depth, base: start, lastCons: start}
}

// Fill records that the next buffer took fillCost to produce, and returns
// the simulated time at which the consumer may begin draining it.
func (p *Pipeline) Fill(fillCost time.Duration) (consStart time.Duration) {
	fillStart := p.base
	if p.started {
		fillStart = p.fillEndAt(p.i - 1)
		if p.Depth > 1 {
			// The slot being refilled was last used by buffer i-Depth and
			// must have been fully consumed.
			if j := p.i - p.Depth; j >= 0 {
				if ce := p.consEndAt(j); ce > fillStart {
					fillStart = ce
				}
			}
		} else {
			// Serial: cannot start filling before the previous buffer is
			// consumed.
			if ce := p.consEndAt(p.i - 1); ce > fillStart {
				fillStart = ce
			}
		}
	}
	fillEnd := fillStart + fillCost
	p.fillEnd = append(p.fillEnd, fillEnd)
	consStart = fillEnd
	if ce := p.consEndAt(p.i - 1); ce > consStart {
		consStart = ce
	}
	// Reserve the consume slot; Consume will finalize it.
	p.consEnd = append(p.consEnd, consStart)
	p.i++
	p.started = true
	return consStart
}

// Consume records that the most recently filled buffer took consCost to
// drain, and returns the simulated time at which draining finishes.
func (p *Pipeline) Consume(consCost time.Duration) (consEnd time.Duration) {
	if p.i == 0 {
		return p.base
	}
	idx := p.i - 1
	p.consEnd[idx] += consCost
	p.lastCons = p.consEnd[idx]
	return p.consEnd[idx]
}

// End reports the simulated completion time of everything recorded so far.
func (p *Pipeline) End() time.Duration { return p.lastCons }

func (p *Pipeline) fillEndAt(i int) time.Duration {
	if i < 0 || i >= len(p.fillEnd) {
		return p.base
	}
	return p.fillEnd[i]
}

func (p *Pipeline) consEndAt(i int) time.Duration {
	if i < 0 || i >= len(p.consEnd) {
		return p.base
	}
	return p.consEnd[i]
}
