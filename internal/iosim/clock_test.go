package iosim

import (
	"sync"
	"testing"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(3 * time.Second)
	c.Advance(500 * time.Millisecond)
	if got, want := c.Now(), 3500*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockAdvanceNegativeIgnored(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if got := c.Now(); got != time.Second {
		t.Fatalf("Now() = %v, want 1s after negative advance ignored", got)
	}
}

func TestClockSetAndReset(t *testing.T) {
	c := NewClock()
	c.Advance(10 * time.Second)
	c.Set(4 * time.Second)
	if got := c.Now(); got != 4*time.Second {
		t.Fatalf("Set: Now() = %v, want 4s", got)
	}
	c.Set(-time.Second)
	if got := c.Now(); got != 0 {
		t.Fatalf("Set negative: Now() = %v, want 0", got)
	}
	c.Advance(time.Second)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("Reset: Now() = %v, want 0", got)
	}
}

func TestClockSeconds(t *testing.T) {
	c := NewClock()
	c.Advance(1500 * time.Millisecond)
	if got := c.Seconds(); got != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", got)
	}
}

func TestClockString(t *testing.T) {
	c := NewClock()
	c.Advance(2 * time.Second)
	if got, want := c.String(), "t=2.000s"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), time.Duration(workers*per)*time.Microsecond; got != want {
		t.Fatalf("concurrent Now() = %v, want %v", got, want)
	}
}
