// Package iosim provides a deterministic simulation of block-addressable
// secondary storage (HDD, SSD) and of virtual time.
//
// The CorgiPile paper's performance results depend on the relative cost of
// random versus sequential access as a function of block size, not on any
// particular piece of hardware. This package reproduces that trade-off with
// a latency/bandwidth device model driven by a virtual clock, so that every
// benchmark in this repository is reproducible bit-for-bit on any host.
package iosim

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock measuring simulated elapsed time.
//
// Components that model work (device transfers, gradient computation, buffer
// copies) advance the clock by the simulated duration of that work. The zero
// value is a clock at time zero, ready to use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current simulated time as a duration since the start of
// the simulation.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative durations are ignored.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Set moves the clock to t. It is used by pipelined components (such as the
// double-buffered TupleShuffle operator) that retroactively overlap I/O time
// with compute time: they measure both serially and then set the clock to
// the pipelined completion time. Set never moves the clock backwards past
// zero; it may move it backwards relative to Now, which is exactly the point
// of overlap accounting.
func (c *Clock) Set(t time.Duration) {
	if t < 0 {
		t = 0
	}
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

// Reset returns the clock to time zero.
func (c *Clock) Reset() { c.Set(0) }

// Seconds reports the current simulated time in seconds.
func (c *Clock) Seconds() float64 { return c.Now().Seconds() }

// String implements fmt.Stringer.
func (c *Clock) String() string {
	return fmt.Sprintf("t=%.3fs", c.Seconds())
}
