package iosim

import "testing"

func TestCacheHitOnRepeatExtent(t *testing.T) {
	c := newPageCache(4<<20, 0)
	if c.span(0, 1<<20) != 0 {
		t.Fatal("first read must miss")
	}
	if c.span(0, 1<<20) != 1<<20 {
		t.Fatal("second read of same extent must hit fully")
	}
}

func TestCacheNoFalseHitsForNeighbors(t *testing.T) {
	// Reading an adjacent, never-read extent must NOT hit, whatever the
	// internal granularity (regression test for unit-granularity false
	// hits).
	c := newPageCache(64<<20, 0)
	c.span(0, 64<<10)
	if c.span(64<<10, 64<<10) != 0 {
		t.Fatal("adjacent unread extent reported a hit")
	}
	if c.span(1<<10, 2<<10) != 0 {
		t.Fatal("unaligned overlap of a cached extent is not tracked and must miss")
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := newPageCache(2<<20, 0) // two 1 MiB extents fit
	c.span(0, 1<<20)
	c.span(10<<20, 1<<20)
	c.span(0, 1<<20)      // offset 0 is now MRU
	c.span(20<<20, 1<<20) // evicts offset 10<<20
	if c.span(0, 1<<20) == 0 {
		t.Fatal("MRU extent should have survived")
	}
	if c.span(10<<20, 1<<20) != 0 {
		t.Fatal("LRU extent should have been evicted")
	}
}

func TestCacheGrowingExtent(t *testing.T) {
	c := newPageCache(8<<20, 0)
	c.span(0, 1<<20)
	// Re-reading a longer extent at the same offset hits the cached prefix.
	if hit := c.span(0, 2<<20); hit != 1<<20 {
		t.Fatalf("growing extent hit = %d, want %d", hit, 1<<20)
	}
	if hit := c.span(0, 2<<20); hit != 2<<20 {
		t.Fatal("grown extent should now hit fully")
	}
}

func TestCacheOversizeExtentNotAdmitted(t *testing.T) {
	c := newPageCache(1<<20, 0)
	c.span(0, 2<<20)
	if c.len() != 0 {
		t.Fatal("extent larger than cache must not be admitted")
	}
	if c.span(0, 2<<20) != 0 {
		t.Fatal("oversize extent must always miss")
	}
}

func TestCacheCapacityEnforced(t *testing.T) {
	c := newPageCache(4<<20, 0)
	for i := int64(0); i < 16; i++ {
		c.span(i*(1<<20), 1<<20)
	}
	if c.total > 4<<20 {
		t.Fatalf("resident bytes %d exceed capacity", c.total)
	}
	if c.len() > 4 {
		t.Fatalf("resident extents = %d, want <= 4", c.len())
	}
}

func TestCacheZeroCapacityDisabled(t *testing.T) {
	c := newPageCache(0, 0)
	if c.span(0, 1<<20) != 0 || c.span(0, 1<<20) != 0 {
		t.Fatal("zero-capacity cache must never hit")
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *pageCache
	if c.span(0, 100) != 0 {
		t.Fatal("nil cache span must be 0")
	}
	c.invalidate() // must not panic
}

func TestCacheInvalidate(t *testing.T) {
	c := newPageCache(8<<20, 0)
	c.span(0, 4<<20)
	c.invalidate()
	if c.len() != 0 || c.total != 0 {
		t.Fatal("invalidate should empty the cache")
	}
	if c.span(0, 4<<20) != 0 {
		t.Fatal("read after invalidate must miss")
	}
}

func TestCacheSequentialFloodingNoHits(t *testing.T) {
	// Looping sequentially over a working set larger than the cache must
	// never hit (the classic LRU sequential-flooding behaviour that keeps
	// the paper's criteo runs disk-bound every epoch).
	c := newPageCache(4<<20, 0)
	var hits int64
	for pass := 0; pass < 3; pass++ {
		for i := int64(0); i < 16; i++ {
			hits += c.span(i*(1<<20), 1<<20)
		}
	}
	if hits != 0 {
		t.Fatalf("sequential flooding produced %d hit bytes, want 0", hits)
	}
}
