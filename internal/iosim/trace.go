package iosim

import "sync"

// Access records one device operation for trace analysis.
type Access struct {
	// Write distinguishes writes from reads.
	Write bool
	// Off and N are the byte offset and length.
	Off, N int64
	// Seek reports whether the access paid the seek penalty.
	Seek bool
}

// Trace captures a device's access pattern — the tool for verifying, e.g.,
// that a No Shuffle scan is sequential while CorgiPile's accesses are
// block-random. Attach with Device.WithTrace.
type Trace struct {
	mu       sync.Mutex
	accesses []Access
}

// record appends one access.
func (t *Trace) record(a Access) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.accesses = append(t.accesses, a)
	t.mu.Unlock()
}

// Accesses returns a snapshot of the recorded operations.
func (t *Trace) Accesses() []Access {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Access, len(t.accesses))
	copy(out, t.accesses)
	return out
}

// Reset clears the trace.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.accesses = t.accesses[:0]
	t.mu.Unlock()
}

// SeekFraction reports the fraction of read accesses that paid a seek —
// ~0 for a sequential scan, ~1 for random block reads.
func (t *Trace) SeekFraction() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	reads, seeks := 0, 0
	for _, a := range t.accesses {
		if a.Write {
			continue
		}
		reads++
		if a.Seek {
			seeks++
		}
	}
	if reads == 0 {
		return 0
	}
	return float64(seeks) / float64(reads)
}

// WithTrace attaches an access trace to the device and returns the trace.
func (d *Device) WithTrace() *Trace {
	t := &Trace{}
	d.mu.Lock()
	d.trace = t
	d.mu.Unlock()
	return t
}
