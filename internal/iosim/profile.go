package iosim

import "time"

// Profile describes the performance characteristics of a storage device.
//
// The parameters follow the paper's experimental setup (Section 7.1.1): the
// HDD has a maximum bandwidth of 140 MB/s, the SSD of 1 GB/s. Seek latency
// is the fixed repositioning cost paid by every non-contiguous access — the
// t_lat term of the Theorem 1 discussion; bandwidth gives the per-byte
// transfer cost t_t.
type Profile struct {
	// Name identifies the device class, e.g. "hdd".
	Name string
	// SeekLatency is the fixed cost of a non-contiguous access: head seek
	// plus rotational delay for an HDD, command/flash latency for an SSD.
	SeekLatency time.Duration
	// ReadBandwidth is the sustained sequential read rate in bytes/second.
	ReadBandwidth float64
	// WriteBandwidth is the sustained sequential write rate in bytes/second.
	WriteBandwidth float64
}

// Common device profiles. The numbers are calibrated so that, as in
// Appendix A (Figure 20), random access at 10 MB block granularity reaches
// within a few percent of sequential bandwidth on both device classes,
// while per-tuple random access is one to three orders of magnitude slower.
var (
	// HDD models the paper's 1000 GB cloud disk: 140 MB/s bandwidth and a
	// ~10 ms seek-and-rotate penalty.
	HDD = Profile{
		Name:           "hdd",
		SeekLatency:    10 * time.Millisecond,
		ReadBandwidth:  140e6,
		WriteBandwidth: 120e6,
	}
	// SSD models the paper's 894 GB cloud SSD: 1 GB/s bandwidth and a
	// ~100 µs access latency.
	SSD = Profile{
		Name:           "ssd",
		SeekLatency:    100 * time.Microsecond,
		ReadBandwidth:  1e9,
		WriteBandwidth: 800e6,
	}
	// RAM models in-memory access (the OS page cache): effectively no seek
	// cost and memory-bus bandwidth.
	RAM = Profile{
		Name:           "ram",
		SeekLatency:    0,
		ReadBandwidth:  10e9,
		WriteBandwidth: 10e9,
	}
)

// ProfileByName returns the built-in profile with the given name.
// It returns false if the name is unknown.
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case "hdd":
		return HDD, true
	case "ssd":
		return SSD, true
	case "ram", "mem", "memory":
		return RAM, true
	}
	return Profile{}, false
}

// readCost returns the time to transfer n bytes at the profile's read
// bandwidth.
func (p Profile) readCost(n int64) time.Duration {
	if p.ReadBandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(n) / p.ReadBandwidth * float64(time.Second))
}

// writeCost returns the time to transfer n bytes at the profile's write
// bandwidth.
func (p Profile) writeCost(n int64) time.Duration {
	if p.WriteBandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(n) / p.WriteBandwidth * float64(time.Second))
}
