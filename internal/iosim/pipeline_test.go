package iosim

import (
	"testing"
	"testing/quick"
	"time"
)

func runPipeline(depth int, fills, cons []time.Duration) time.Duration {
	p := NewPipeline(depth, 0)
	for i := range fills {
		p.Fill(fills[i])
		p.Consume(cons[i])
	}
	return p.End()
}

func TestPipelineSerialIsSum(t *testing.T) {
	fills := []time.Duration{2, 3, 1}
	cons := []time.Duration{4, 1, 2}
	got := runPipeline(1, fills, cons)
	want := time.Duration(2 + 4 + 3 + 1 + 1 + 2)
	if got != want {
		t.Fatalf("serial end = %v, want %v", got, want)
	}
}

func TestPipelineDoubleBufferOverlaps(t *testing.T) {
	// Three buffers, fill=2, consume=4 each.
	// fill0 ends at 2; cons0 2..6. fill1 overlaps: 2..4; cons1 6..10.
	// fill2 starts max(fillEnd1=4, consEnd0=6)=6 (slot reuse), ends 8; cons2 10..14.
	fills := []time.Duration{2, 2, 2}
	cons := []time.Duration{4, 4, 4}
	got := runPipeline(2, fills, cons)
	if want := time.Duration(14); got != want {
		t.Fatalf("double-buffered end = %v, want %v", got, want)
	}
	serial := runPipeline(1, fills, cons)
	if want := time.Duration(18); serial != want {
		t.Fatalf("serial end = %v, want %v", serial, want)
	}
}

func TestPipelineIOBound(t *testing.T) {
	// When fills dominate, total ~ sum(fills) + last consume.
	fills := []time.Duration{10, 10, 10}
	cons := []time.Duration{1, 1, 1}
	got := runPipeline(2, fills, cons)
	if want := time.Duration(31); got != want {
		t.Fatalf("io-bound end = %v, want %v", got, want)
	}
}

func TestPipelineComputeBound(t *testing.T) {
	// When consumes dominate, total ~ first fill + sum(cons).
	fills := []time.Duration{1, 1, 1}
	cons := []time.Duration{10, 10, 10}
	got := runPipeline(2, fills, cons)
	if want := time.Duration(31); got != want {
		t.Fatalf("compute-bound end = %v, want %v", got, want)
	}
}

func TestPipelineStartOffset(t *testing.T) {
	p := NewPipeline(2, 100)
	cs := p.Fill(5)
	if cs != 105 {
		t.Fatalf("consStart = %v, want 105", cs)
	}
	if end := p.Consume(3); end != 108 {
		t.Fatalf("consEnd = %v, want 108", end)
	}
}

func TestPipelineEmptyEnd(t *testing.T) {
	p := NewPipeline(2, 42)
	if p.End() != 42 {
		t.Fatalf("empty pipeline End = %v, want base", p.End())
	}
	if p.Consume(5) != 42 {
		t.Fatal("Consume without Fill must be a no-op at base time")
	}
}

func TestPipelineDepthClamp(t *testing.T) {
	p := NewPipeline(0, 0)
	if p.Depth != 1 {
		t.Fatalf("depth 0 should clamp to 1, got %d", p.Depth)
	}
}

// Property: double buffering never takes longer than serial execution and
// never finishes before max(total fill, total consume) given the first fill.
func TestPipelineBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		n := len(raw) / 2
		fills := make([]time.Duration, n)
		cons := make([]time.Duration, n)
		var sumF, sumC time.Duration
		for i := 0; i < n; i++ {
			fills[i] = time.Duration(raw[2*i]) * time.Microsecond
			cons[i] = time.Duration(raw[2*i+1]) * time.Microsecond
			sumF += fills[i]
			sumC += cons[i]
		}
		double := runPipeline(2, fills, cons)
		serial := runPipeline(1, fills, cons)
		if double > serial {
			return false
		}
		// Lower bounds: all fills are serial on one thread; all consumes on
		// the other; the first consume cannot start before the first fill.
		if double < sumF+cons[n-1] && double < fills[0]+sumC {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
