package iosim

import (
	"fmt"
	"sync"
	"time"

	"corgipile/internal/obs"
)

// Stats counts the traffic a device has served since creation or the last
// ResetStats call.
type Stats struct {
	Reads         int64 // read operations
	Writes        int64 // write operations
	Seeks         int64 // non-contiguous repositionings
	BytesRead     int64
	BytesWrit     int64
	CacheHitBytes int64 // bytes served from the simulated OS cache (obs.IOCacheHitBytes)
	Faults        int64 // transient read errors injected by the fault plan
	Stragglers    int64 // reads that paid an injected latency spike
}

// Device is a simulated block-addressable storage device.
//
// A Device does not hold data; storage contents live in the in-memory heap
// files of internal/storage. The device's job is purely to account for the
// simulated time that reads and writes would take on real hardware,
// advancing the shared Clock. Accesses contiguous with the previous access
// proceed at full bandwidth; any other access first pays the profile's seek
// latency. An optional cache models the OS page cache.
//
// Device is safe for concurrent use.
type Device struct {
	mu     sync.Mutex
	prof   Profile
	clock  *Clock
	pos    int64 // head position: offset just past the last access
	cache  *pageCache
	trace  *Trace
	stats  Stats
	reg    *obs.Registry
	faults *faultInjector
}

// NewDevice returns a device with the given profile, charging time to clock.
func NewDevice(prof Profile, clock *Clock) *Device {
	return &Device{prof: prof, clock: clock, pos: -1}
}

// WithCache attaches a simulated OS page cache of the given capacity (bytes)
// to the device and returns the device. Cached extents are re-read at RAM
// bandwidth. Unit granularity is 1 MiB.
func (d *Device) WithCache(capacityBytes int64) *Device {
	d.mu.Lock()
	d.cache = newPageCache(capacityBytes, 1<<20)
	d.mu.Unlock()
	return d
}

// WithObs attaches an observability registry to the device and returns the
// device: every subsequent access reports its operation count, bytes, seeks,
// cache hits, and simulated cost under the obs.IO* metric names. The
// registry generalizes the per-access Trace — Trace answers "what was the
// access pattern", the registry feeds the cross-layer epoch breakdown.
func (d *Device) WithObs(reg *obs.Registry) *Device {
	d.mu.Lock()
	d.reg = reg
	d.mu.Unlock()
	return d
}

// WithFaults attaches a deterministic fault-injection plan to the device and
// returns the device. Faults act only on TryReadAt — the checked read path
// real data accesses use; pure cost-accounting calls (ReadAt, WriteAt,
// ReadCost) never fail, so a zero plan leaves every existing timing
// bit-for-bit unchanged.
func (d *Device) WithFaults(p FaultPlan) *Device {
	d.mu.Lock()
	if p.Enabled() {
		d.faults = newFaultInjector(p)
	} else {
		d.faults = nil
	}
	d.mu.Unlock()
	return d
}

// FaultPlan returns the attached fault plan (zero when none).
func (d *Device) FaultPlan() FaultPlan {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.faults == nil {
		return FaultPlan{}
	}
	return d.faults.plan
}

// BlockCorrupt reports whether the fault plan marks storage block i as
// permanently corrupt. The storage layer consults this on each block read
// and flips a payload bit so its CRC check trips.
func (d *Device) BlockCorrupt(i int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults != nil && d.faults.corrupt[i]
}

// Profile returns the device's performance profile.
func (d *Device) Profile() Profile { return d.prof }

// Clock returns the clock the device charges time to.
func (d *Device) Clock() *Clock { return d.clock }

// Stats returns a snapshot of the device's traffic counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the traffic counters.
func (d *Device) ResetStats() {
	d.mu.Lock()
	d.stats = Stats{}
	d.mu.Unlock()
}

// DropCaches invalidates the simulated OS cache, as the paper does before
// each experiment.
func (d *Device) DropCaches() {
	d.mu.Lock()
	d.cache.invalidate()
	d.mu.Unlock()
}

// ReadAt charges the cost of reading n bytes at offset off and returns that
// cost. The clock is advanced by the same amount.
func (d *Device) ReadAt(off, n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	d.mu.Lock()
	cost := d.readCostLocked(off, n)
	d.mu.Unlock()
	d.clock.Advance(cost)
	return cost
}

// TryReadAt is the checked variant of ReadAt used by real data reads: it
// consults the device's fault plan before transferring. A transient fault
// charges the plan's error latency and returns an error wrapping
// ErrTransient without moving the head or touching the cache (no data was
// transferred); a straggler read succeeds but pays an extra latency spike.
// With no fault plan attached, TryReadAt is exactly ReadAt.
func (d *Device) TryReadAt(off, n int64) (time.Duration, error) {
	if n <= 0 {
		return 0, nil
	}
	d.mu.Lock()
	if d.faults != nil && d.faults.readError() {
		cost := d.faults.errorCost(d.prof)
		d.stats.Faults++
		if d.reg != nil {
			d.reg.Inc(obs.IOFaultOps)
			d.reg.AddDuration(obs.IOTimeNanos, cost)
		}
		d.mu.Unlock()
		d.clock.Advance(cost)
		return cost, fmt.Errorf("iosim: read %d bytes at %d: %w", n, off, ErrTransient)
	}
	cost := d.readCostLocked(off, n)
	if d.faults != nil {
		if extra, ok := d.faults.straggle(); ok {
			cost += extra
			d.stats.Stragglers++
			if d.reg != nil {
				d.reg.Inc(obs.IOStragglerOps)
				d.reg.AddDuration(obs.IOTimeNanos, extra)
			}
		}
	}
	d.mu.Unlock()
	d.clock.Advance(cost)
	return cost, nil
}

// readCostLocked computes and accounts the cost of a read without touching
// the clock. Callers must hold d.mu.
func (d *Device) readCostLocked(off, n int64) time.Duration {
	d.stats.Reads++
	d.stats.BytesRead += n

	hit := d.cache.span(off, n)
	d.stats.CacheHitBytes += hit
	miss := n - hit

	var cost time.Duration
	seek := false
	// Cached bytes move at memory speed regardless of position.
	cost += RAM.readCost(hit)
	if miss > 0 {
		if off != d.pos {
			cost += d.prof.SeekLatency
			d.stats.Seeks++
			seek = true
		}
		cost += d.prof.readCost(miss)
	}
	d.pos = off + n
	d.trace.record(Access{Off: off, N: n, Seek: seek})
	if d.reg != nil {
		d.reg.Inc(obs.IOReadOps)
		d.reg.Add(obs.IOReadBytes, n)
		d.reg.Add(obs.IOCacheHitBytes, hit)
		if seek {
			d.reg.Inc(obs.IOSeeks)
		}
		d.reg.AddDuration(obs.IOTimeNanos, cost)
	}
	return cost
}

// WriteAt charges the cost of writing n bytes at offset off and returns that
// cost. Writes always touch the medium (write-through); they also populate
// the cache so that a subsequent read hits.
func (d *Device) WriteAt(off, n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	d.mu.Lock()
	d.stats.Writes++
	d.stats.BytesWrit += n
	var cost time.Duration
	seek := off != d.pos
	if seek {
		cost += d.prof.SeekLatency
		d.stats.Seeks++
	}
	cost += d.prof.writeCost(n)
	d.cache.span(off, n)
	d.trace.record(Access{Write: true, Off: off, N: n, Seek: seek})
	d.pos = off + n
	if d.reg != nil {
		d.reg.Inc(obs.IOWriteOps)
		d.reg.Add(obs.IOWriteBytes, n)
		if seek {
			d.reg.Inc(obs.IOWriteSeeks)
		}
		d.reg.AddDuration(obs.IOTimeNanos, cost)
	}
	d.mu.Unlock()
	d.clock.Advance(cost)
	return cost
}

// ReadCost computes the cost of reading n bytes at offset off without
// advancing the clock. It still updates head position, cache state, and
// statistics; it exists for pipelined components that account for overlap
// themselves.
func (d *Device) ReadCost(off, n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	d.mu.Lock()
	cost := d.readCostLocked(off, n)
	d.mu.Unlock()
	return cost
}

// SequentialReadThroughput reports the throughput, in bytes/second, of
// reading total bytes sequentially from a cold device with this profile.
func SequentialReadThroughput(p Profile, total int64) float64 {
	cost := p.SeekLatency + p.readCost(total)
	if cost <= 0 {
		return 0
	}
	return float64(total) / cost.Seconds()
}

// RandomBlockReadThroughput reports the throughput, in bytes/second, of
// reading total bytes from a cold device in randomly placed blocks of
// blockSize bytes each. This is the measurement behind Appendix A Figure 20:
// as blockSize grows, throughput approaches sequential bandwidth.
func RandomBlockReadThroughput(p Profile, total, blockSize int64) float64 {
	if blockSize <= 0 || total <= 0 {
		return 0
	}
	blocks := (total + blockSize - 1) / blockSize
	cost := time.Duration(blocks)*p.SeekLatency + p.readCost(total)
	if cost <= 0 {
		return 0
	}
	return float64(total) / cost.Seconds()
}
