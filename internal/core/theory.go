package core

import (
	"math"

	"corgipile/internal/data"
	"corgipile/internal/ml"
)

// HDFactor estimates the paper's block-variance factor h_D at weights w:
// the smallest h such that
//
//	(1/N) Σ_l ‖∇f_{B_l}(w) − ∇F(w)‖² ≤ h·σ²/b,
//
// where ∇f_{B_l} is the mean gradient of block l, σ² the per-tuple gradient
// variance, and b the block size. h_D = 1 for fully shuffled data (each
// block is an i.i.d. sample) and approaches b for perfectly clustered
// blocks — it is the knob through which data order enters Theorem 1's
// convergence rate.
//
// blocks partitions ds into consecutive runs; pass equal-size runs for the
// paper's setting.
func HDFactor(m ml.Model, w []float64, ds *data.Dataset, blockTuples int) float64 {
	n := ds.Len()
	if n == 0 || blockTuples <= 0 {
		return 0
	}
	dim := len(w)
	full := make([]float64, dim)
	var gi []int32
	var gv []float64

	// Per-tuple gradients are needed twice (variance and block means);
	// materialize them densely only via accumulation to avoid O(n·dim)
	// memory: first pass computes ∇F, second computes both variances.
	perTuple := func(i int, out []float64) {
		gi, gv = gi[:0], gv[:0]
		_, gi, gv = m.Grad(w, &ds.Tuples[i], gi, gv)
		for j := range out {
			out[j] = 0
		}
		for j, idx := range gi {
			out[idx] += gv[j]
		}
	}

	g := make([]float64, dim)
	for i := 0; i < n; i++ {
		perTuple(i, g)
		for j := range full {
			full[j] += g[j]
		}
	}
	for j := range full {
		full[j] /= float64(n)
	}

	var sigma2 float64 // (1/m) Σ ‖∇f_i − ∇F‖²
	numBlocks := (n + blockTuples - 1) / blockTuples
	blockMean := make([]float64, dim)
	var blockVar float64 // (1/N) Σ ‖∇f_Bl − ∇F‖²
	for b := 0; b < numBlocks; b++ {
		lo := b * blockTuples
		hi := lo + blockTuples
		if hi > n {
			hi = n
		}
		for j := range blockMean {
			blockMean[j] = 0
		}
		for i := lo; i < hi; i++ {
			perTuple(i, g)
			var d2 float64
			for j := range g {
				d := g[j] - full[j]
				d2 += d * d
				blockMean[j] += g[j]
			}
			sigma2 += d2
		}
		var d2 float64
		cnt := float64(hi - lo)
		for j := range blockMean {
			d := blockMean[j]/cnt - full[j]
			d2 += d * d
		}
		blockVar += d2
	}
	sigma2 /= float64(n)
	blockVar /= float64(numBlocks)
	if sigma2 == 0 {
		if blockVar == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return blockVar * float64(blockTuples) / sigma2
}

// BoundParams carries the problem constants of Theorem 1.
type BoundParams struct {
	// N is the total number of blocks, n the buffered blocks, B the tuples
	// per block, and M the total tuple count (M = N·B).
	N, Nbuf, B, M int
	// HD is the block-variance factor h_D.
	HD float64
	// Sigma2 is the per-tuple gradient variance σ².
	Sigma2 float64
	// T is the total number of tuple updates (S·n·b).
	T int
}

// Theorem1Bound evaluates the order-level convergence bound of Theorem 1
// for strongly convex objectives:
//
//	E[F(x̄) − F(x*)] ≲ (1−α)·h_D·σ²/T + β/T² + γ·m³/T³
//
// with α = (n−1)/(N−1), β = α² + (1−α)²(b−1)², γ = n³/N³. Constant factors
// are suppressed exactly as in the paper's ≲ notation, so the value is
// meaningful for *comparisons* across parameter settings, not in absolute
// terms.
func Theorem1Bound(p BoundParams) float64 {
	if p.T <= 0 || p.N <= 1 {
		return math.Inf(1)
	}
	alpha := float64(p.Nbuf-1) / float64(p.N-1)
	b := float64(p.B)
	beta := alpha*alpha + (1-alpha)*(1-alpha)*(b-1)*(b-1)
	nn := float64(p.Nbuf)
	gamma := nn * nn * nn / (float64(p.N) * float64(p.N) * float64(p.N))
	T := float64(p.T)
	m := float64(p.M)
	return (1-alpha)*p.HD*p.Sigma2/T + beta/(T*T) + gamma*m*m*m/(T*T*T)
}

// Alpha returns α = (n−1)/(N−1), the buffer coverage factor of Theorem 1.
func Alpha(nbuf, n int) float64 {
	if n <= 1 {
		return 1
	}
	return float64(nbuf-1) / float64(n-1)
}

// Theorem2Bound evaluates the order-level convergence bound of Theorem 2
// for smooth non-convex objectives (the ergodic gradient-norm average):
//
//	(1/S) Σ E‖∇F(x₀ˢ)‖² ≲ √((1−α)·h_D)·σ/√T + β/T + γ·m³/T^{3/2}
//
// with β = α²/((1−α)h_Dσ²) + (1−α)(b−1)²/(h_Dσ²) and γ = n³/((1−α)N³) for
// α ≤ (N−2)/(N−1); for α = 1 (full buffer) the bound is
// 1/T^{2/3} + (n³/N³)·m³/T. Constant factors are suppressed as in the
// paper's ≲ notation — compare values across settings, not absolutely.
func Theorem2Bound(p BoundParams) float64 {
	if p.T <= 0 || p.N <= 1 {
		return math.Inf(1)
	}
	T := float64(p.T)
	m := float64(p.M)
	nn := float64(p.Nbuf)
	NN := float64(p.N)
	gammaFull := nn * nn * nn / (NN * NN * NN)
	alpha := Alpha(p.Nbuf, p.N)
	if alpha >= 1 {
		return math.Pow(T, -2.0/3.0) + gammaFull*m*m*m/T
	}
	hs2 := p.HD * p.Sigma2
	if hs2 <= 0 {
		return math.Inf(1)
	}
	b := float64(p.B)
	beta := alpha*alpha/((1-alpha)*hs2) + (1-alpha)*(b-1)*(b-1)/hs2
	gamma := gammaFull / (1 - alpha)
	return math.Sqrt((1-alpha)*hs2)/math.Sqrt(T) + beta/T + gamma*m*m*m/math.Pow(T, 1.5)
}

// RecommendBuffer searches for the smallest buffer (in blocks) whose
// Theorem 1 bound comes within tolerance of the best achievable bound over
// all buffer sizes — the principled answer to "how much memory does
// CorgiPile need on this table?". It returns the block count, the bound at
// the recommendation, and the best bound.
func RecommendBuffer(p BoundParams, tolerance float64) (nbuf int, bound, bestBound float64) {
	if tolerance <= 0 {
		tolerance = 1.10
	}
	bounds := make([]float64, p.N+1)
	bestBound = math.Inf(1)
	for n := 1; n <= p.N; n++ {
		q := p
		q.Nbuf = n
		bounds[n] = Theorem1Bound(q)
		if bounds[n] < bestBound {
			bestBound = bounds[n]
		}
	}
	for n := 1; n <= p.N; n++ {
		if bounds[n] <= bestBound*tolerance {
			return n, bounds[n], bestBound
		}
	}
	return p.N, bounds[p.N], bestBound
}
