package core

import (
	"math/rand"
	"testing"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/shuffle"
)

// trainWith runs SVM for the given strategy over a clustered dataset and
// returns the final train accuracy.
func trainWith(t *testing.T, kind shuffle.Kind, ds *data.Dataset, epochs int) float64 {
	t.Helper()
	src := shuffle.NewMemSource(ds, 50)
	st, err := shuffle.New(kind, src, shuffle.Options{Seed: 7, BufferFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Strategy:  st,
		Model:     ml.SVM{},
		Opt:       ml.NewSGD(0.05),
		Features:  ds.Features,
		Epochs:    epochs,
		BatchSize: 1,
		TrainEval: ds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Final().TrainAcc
}

// TestConvergenceOrdering reproduces the paper's central claim (Figures 2
// and 12) in miniature: on clustered data,
//
//	No Shuffle ≪ Sliding-Window < CorgiPile ≈ Shuffle Once.
func TestConvergenceOrdering(t *testing.T) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 4000, Features: 10, Separation: 1.5, Noise: 1.0,
		Order: data.OrderClustered, Seed: 41})
	const epochs = 8

	noShuffle := trainWith(t, shuffle.KindNoShuffle, ds, epochs)
	window := trainWith(t, shuffle.KindSlidingWindow, ds, epochs)
	corgi := trainWith(t, shuffle.KindCorgiPile, ds, epochs)
	once := trainWith(t, shuffle.KindShuffleOnce, ds, epochs)

	t.Logf("no_shuffle=%.3f sliding_window=%.3f corgipile=%.3f shuffle_once=%.3f",
		noShuffle, window, corgi, once)

	if once < 0.85 {
		t.Fatalf("shuffle-once accuracy %.3f too low; test data too hard", once)
	}
	if corgi < once-0.02 {
		t.Fatalf("corgipile %.3f should match shuffle-once %.3f within 2pp", corgi, once)
	}
	if noShuffle > once-0.1 {
		t.Fatalf("no-shuffle %.3f should badly trail shuffle-once %.3f on clustered data", noShuffle, once)
	}
	if window > corgi-0.05 {
		t.Fatalf("sliding-window %.3f should trail corgipile %.3f", window, corgi)
	}
}

// TestShuffledDataAllStrategiesFine mirrors Figure 2's right half: on
// pre-shuffled data every strategy converges.
func TestShuffledDataAllStrategiesFine(t *testing.T) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 3000, Features: 10, Separation: 2, Order: data.OrderShuffled, Seed: 42})
	for _, kind := range []shuffle.Kind{shuffle.KindNoShuffle, shuffle.KindCorgiPile, shuffle.KindSlidingWindow} {
		if acc := trainWith(t, kind, ds, 6); acc < 0.85 {
			t.Errorf("%s on shuffled data: accuracy %.3f < 0.85", kind, acc)
		}
	}
}

func TestRunRecordsSimulatedTime(t *testing.T) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 500, Features: 8, Order: data.OrderClustered, Seed: 43})
	clock := iosim.NewClock()
	src := shuffle.NewMemSource(ds, 50).WithClock(clock, 0)
	st, _ := shuffle.New(shuffle.KindCorgiPile, src, shuffle.Options{Seed: 1})
	res, err := Run(RunConfig{
		Strategy: st, Model: ml.LogisticRegression{}, Opt: ml.NewSGD(0.1),
		Features: ds.Features, Epochs: 3, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	prev := 0.0
	for _, p := range res.Points {
		if p.Seconds <= prev {
			t.Fatalf("epoch %d time %v not increasing past %v", p.Epoch, p.Seconds, prev)
		}
		prev = p.Seconds
		if p.Tuples != 500 {
			t.Fatalf("epoch %d consumed %d tuples, want 500", p.Epoch, p.Tuples)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Fatal("Run without components must error")
	}
}

func TestRunRegressionUsesR2(t *testing.T) {
	ds := data.SyntheticRegression(data.SyntheticConfig{
		Tuples: 2000, Features: 6, Noise: 0.1, Order: data.OrderShuffled, Seed: 44})
	src := shuffle.NewMemSource(ds, 100)
	st, _ := shuffle.New(shuffle.KindNoShuffle, src, shuffle.Options{Seed: 1})
	res, err := Run(RunConfig{
		Strategy: st, Model: ml.LinearRegression{}, Opt: ml.NewSGD(0.01),
		Features: ds.Features, Epochs: 8, TrainEval: ds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final().TrainAcc < 0.9 {
		t.Fatalf("R² = %.3f, want >= 0.9", res.Final().TrainAcc)
	}
}

func TestRunMLPWithInit(t *testing.T) {
	ds := data.SyntheticMulticlass(data.SyntheticConfig{
		Tuples: 1200, Features: 16, Classes: 3, Separation: 4,
		Order: data.OrderShuffled, Seed: 45})
	src := shuffle.NewMemSource(ds, 60)
	st, _ := shuffle.New(shuffle.KindCorgiPile, src, shuffle.Options{Seed: 2})
	m := ml.MLP{Classes: 3, Hidden: 16}
	res, err := Run(RunConfig{
		Strategy: st, Model: m, Opt: ml.NewSGD(0.02),
		Features: ds.Features, Epochs: 10, BatchSize: 16,
		TrainEval: ds, InitWeights: MLPInit(m, ds.Features, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final().TrainAcc < 0.8 {
		t.Fatalf("MLP accuracy %.3f < 0.8", res.Final().TrainAcc)
	}
}

func TestResultFinalEmpty(t *testing.T) {
	var r Result
	if r.Final() != (EpochPoint{}) {
		t.Fatal("empty result Final should be zero")
	}
}

func TestBlockSamplerWithoutReplacement(t *testing.T) {
	s := NewBlockSampler(20, rand.New(rand.NewSource(1)))
	s.StartEpoch()
	seen := map[int]bool{}
	for {
		ids := s.Draw(3)
		if ids == nil {
			break
		}
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("block %d drawn twice in one epoch", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 20 {
		t.Fatalf("epoch covered %d blocks, want 20", len(seen))
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", s.Remaining())
	}
}

func TestBlockSamplerAutoStart(t *testing.T) {
	s := NewBlockSampler(5, rand.New(rand.NewSource(2)))
	if got := s.Draw(10); len(got) != 5 {
		t.Fatalf("auto-started draw returned %d ids, want 5", len(got))
	}
}
