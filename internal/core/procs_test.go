package core

import (
	"testing"

	"corgipile/internal/data"
	"corgipile/internal/ml"
	"corgipile/internal/shuffle"
)

// TestRunProcsInvariantLossTrace is the end-to-end determinism guarantee for
// the parallel mini-batch engine: an identical seed must produce an identical
// Result.Points loss trace and final weights at every Procs setting.
func TestRunProcsInvariantLossTrace(t *testing.T) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 2000, Features: 12, Separation: 2,
		Order: data.OrderClustered, Seed: 55})
	run := func(procs int) *Result {
		src := shuffle.NewMemSource(ds, 50)
		st, err := shuffle.New(shuffle.KindCorgiPile, src,
			shuffle.Options{Seed: 9, BufferFraction: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(RunConfig{
			Strategy:  st,
			Model:     ml.SVM{},
			Opt:       ml.NewSGD(0.05),
			Features:  ds.Features,
			Epochs:    4,
			BatchSize: 32,
			Procs:     procs,
			TrainEval: ds,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, procs := range []int{0, 2, 4, 7} {
		res := run(procs)
		if len(res.Points) != len(base.Points) {
			t.Fatalf("procs=%d produced %d points, want %d",
				procs, len(res.Points), len(base.Points))
		}
		for i, p := range res.Points {
			if p.AvgLoss != base.Points[i].AvgLoss {
				t.Fatalf("procs=%d epoch %d loss %v != procs=1 %v",
					procs, p.Epoch, p.AvgLoss, base.Points[i].AvgLoss)
			}
			if p.TrainAcc != base.Points[i].TrainAcc {
				t.Fatalf("procs=%d epoch %d acc %v != procs=1 %v",
					procs, p.Epoch, p.TrainAcc, base.Points[i].TrainAcc)
			}
		}
		for i := range res.W {
			if res.W[i] != base.W[i] {
				t.Fatalf("procs=%d weight %d = %v != procs=1 %v",
					procs, i, res.W[i], base.W[i])
			}
		}
	}
}
