package core

import (
	"testing"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
	"corgipile/internal/storage"
)

// TestRunPopulatesBreakdown checks the end-to-end metrics path: a run with
// a registry attached across the device, strategy, and training loop must
// produce one consistent breakdown row per epoch.
func TestRunPopulatesBreakdown(t *testing.T) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 2000, Features: 8, Order: data.OrderClustered, Seed: 7})
	clock := iosim.NewClock()
	dev := iosim.NewDevice(iosim.HDD, clock)
	tab, err := storage.Build(dev, ds, storage.Options{BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New().WithClock(clock)
	dev.WithObs(reg)
	st, err := shuffle.New(shuffle.KindCorgiPile, shuffle.TableSource(tab),
		shuffle.Options{Seed: 7, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Strategy: st,
		Model:    ml.SVM{},
		Opt:      ml.NewSGD(0.05),
		Features: ds.Features,
		Epochs:   3,
		Clock:    clock,
		Obs:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Breakdown) != 3 {
		t.Fatalf("got %d breakdown rows, want 3", len(res.Breakdown))
	}
	var totalSecs float64
	for i, m := range res.Breakdown {
		if m.Epoch != i+1 {
			t.Fatalf("row %d has epoch %d", i, m.Epoch)
		}
		if m.Tuples != 2000 {
			t.Fatalf("epoch %d consumed %d tuples, want 2000", m.Epoch, m.Tuples)
		}
		if m.Seconds <= 0 || m.IOSeconds <= 0 || m.GradSeconds <= 0 {
			t.Fatalf("epoch %d has non-positive time components: %+v", m.Epoch, m)
		}
		if m.BytesRead == 0 || m.Refills == 0 {
			t.Fatalf("epoch %d missing I/O or refill counts: %+v", m.Epoch, m)
		}
		totalSecs += m.Seconds
	}
	// Per-epoch durations partition the run's simulated time.
	if run := res.Final().Seconds; totalSecs < 0.99*run || totalSecs > 1.01*run {
		t.Fatalf("breakdown seconds %.6f should sum to run seconds %.6f", totalSecs, run)
	}
	// The trainer counted optimizer steps (per-tuple SGD: one per tuple).
	if got := reg.Counter(obs.SGDBatches); got != 3*2000 {
		t.Fatalf("sgd.batches = %d, want 6000", got)
	}
	// Without a sink attached nothing was streamed, and the registry totals
	// match the sum of the per-epoch deltas.
	var tuples int64
	for _, m := range res.Breakdown {
		tuples += m.Tuples
	}
	if got := reg.Counter(obs.SGDTuples); got != tuples {
		t.Fatalf("sgd.tuples total %d != breakdown sum %d", got, tuples)
	}
}
