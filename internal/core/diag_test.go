package core

import (
	"bytes"
	"math"
	"testing"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/ml"
	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
)

// TestDiagTrackerSequences drives the plateau/divergence detector through
// canonical loss trajectories and checks the verdict after each epoch.
func TestDiagTrackerSequences(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		cfg    DiagConfig
		losses []float64
		want   []Verdict
	}{
		{
			name:   "converging",
			losses: []float64{1.0, 0.8, 0.6, 0.5},
			want:   []Verdict{VerdictWarmup, VerdictConverging, VerdictConverging, VerdictConverging},
		},
		{
			name:   "plateau after window",
			losses: []float64{1.0, 1.0, 1.0, 1.0},
			want:   []Verdict{VerdictWarmup, VerdictConverging, VerdictConverging, VerdictPlateau},
		},
		{
			name:   "diverging after window",
			losses: []float64{1.0, 1.1, 1.2, 1.3},
			want:   []Verdict{VerdictWarmup, VerdictConverging, VerdictConverging, VerdictDiverging},
		},
		{
			name:   "non-finite loss diverges immediately",
			losses: []float64{nan},
			want:   []Verdict{VerdictDiverging},
		},
		{
			name:   "recovery resets the rise run",
			losses: []float64{1.0, 1.1, 1.2, 0.9, 0.8},
			want:   []Verdict{VerdictWarmup, VerdictConverging, VerdictConverging, VerdictConverging, VerdictConverging},
		},
		{
			name:   "custom window of 2",
			cfg:    DiagConfig{Window: 2},
			losses: []float64{1.0, 1.1, 1.2},
			want:   []Verdict{VerdictWarmup, VerdictConverging, VerdictDiverging},
		},
		{
			name: "tight tolerance keeps slow progress converging",
			cfg:  DiagConfig{PlateauTol: 1e-6},
			// 0.1% improvements: a plateau under the default 1e-3
			// tolerance, still converging under 1e-6.
			losses: []float64{1.0, 0.999, 0.998, 0.997, 0.996},
			want:   []Verdict{VerdictWarmup, VerdictConverging, VerdictConverging, VerdictConverging, VerdictConverging},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewDiagTracker(tc.cfg)
			for i, loss := range tc.losses {
				delta, v := tr.Observe(loss)
				if v != tc.want[i] {
					t.Fatalf("epoch %d (loss %v): verdict %q, want %q", i+1, loss, v, tc.want[i])
				}
				if i == 0 && delta != 0 {
					t.Fatalf("first epoch loss delta %v, want 0", delta)
				}
			}
		})
	}
}

// diagRun trains a small SVM with the given diagnostics config and feed
// attached, returning the result.
func diagRun(t *testing.T, ds *data.Dataset, diag *DiagConfig, feed *obs.RunFeed, reg *obs.Registry) *Result {
	t.Helper()
	src := shuffle.NewMemSource(ds, 50)
	st, err := shuffle.New(shuffle.KindCorgiPile, src, shuffle.Options{
		Seed: 7, BufferFraction: 0.1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Strategy:  st,
		Model:     ml.SVM{},
		Opt:       ml.NewSGD(0.05),
		Features:  ds.Features,
		Epochs:    5,
		BatchSize: 1,
		TrainEval: ds,
		Obs:       reg,
		Diag:      diag,
		Feed:      feed,
		RunName:   "diag-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func diagDataset() *data.Dataset {
	return data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 2000, Features: 8, Separation: 1.5, Noise: 1.0,
		Order: data.OrderClustered, Seed: 33})
}

// TestDiagReadOnly is the central invariant: enabling diagnostics must not
// perturb the weight trajectory or the loss trace by a single bit.
func TestDiagReadOnly(t *testing.T) {
	ds := diagDataset()
	plain := diagRun(t, ds, nil, nil, nil)
	diag := diagRun(t, ds, &DiagConfig{}, nil, nil)

	if len(plain.Points) != len(diag.Points) {
		t.Fatalf("epoch count changed: %d vs %d", len(plain.Points), len(diag.Points))
	}
	for i := range plain.Points {
		p, d := plain.Points[i], diag.Points[i]
		if p.AvgLoss != d.AvgLoss || p.TrainAcc != d.TrainAcc || p.Tuples != d.Tuples {
			t.Fatalf("epoch %d trace changed with diagnostics on: %+v vs %+v", i+1, p, d)
		}
	}
	for i := range plain.W {
		if plain.W[i] != diag.W[i] {
			t.Fatalf("weight %d changed with diagnostics on: %v vs %v", i, plain.W[i], diag.W[i])
		}
	}

	if plain.Verdict != "" || plain.Diag != nil {
		t.Fatalf("diagnostics populated without Diag config: %q %v", plain.Verdict, plain.Diag)
	}
	if len(diag.Diag) != len(diag.Points) {
		t.Fatalf("diag rows %d, want one per epoch (%d)", len(diag.Diag), len(diag.Points))
	}
	if diag.Diag[0].Verdict != VerdictWarmup {
		t.Fatalf("first epoch verdict %q, want warmup", diag.Diag[0].Verdict)
	}
	if diag.Verdict == "" || diag.Verdict != diag.Diag[len(diag.Diag)-1].Verdict {
		t.Fatalf("final verdict %q does not match last row %q",
			diag.Verdict, diag.Diag[len(diag.Diag)-1].Verdict)
	}
	for _, row := range diag.Diag {
		if row.GradNorm <= 0 {
			t.Fatalf("epoch %d grad norm %v, want > 0", row.Epoch, row.GradNorm)
		}
		if row.UpdateNorm <= 0 {
			t.Fatalf("epoch %d update norm %v, want > 0", row.Epoch, row.UpdateNorm)
		}
	}
}

// TestRunPublishesFeed checks that an attached RunFeed receives one status
// per epoch, consistent with the result's trace, with Done on the last.
func TestRunPublishesFeed(t *testing.T) {
	ds := diagDataset()
	feed := obs.NewRunFeed()
	ch, cancel := feed.Subscribe()
	defer cancel()

	res := diagRun(t, ds, &DiagConfig{}, feed, nil)

	st, seq := feed.Status()
	if seq != int64(len(res.Points)) {
		t.Fatalf("published %d updates, want one per epoch (%d)", seq, len(res.Points))
	}
	if !st.Done {
		t.Fatal("final status must have Done set")
	}
	if st.Run != "diag-test" {
		t.Fatalf("run name %q", st.Run)
	}
	final := res.Final()
	if st.Loss != final.AvgLoss || st.Epoch != final.Epoch {
		t.Fatalf("final status %+v does not match trace point %+v", st, final)
	}
	if st.Verdict == "" {
		t.Fatalf("final status missing diagnostics verdict")
	}
	if st.Tuples != int64(len(res.Points))*int64(ds.Len()) {
		t.Fatalf("cumulative tuples %d, want %d", st.Tuples, len(res.Points)*ds.Len())
	}
	// The subscriber saw the early epochs too (buffer is deeper than the
	// epoch count here).
	first := <-ch
	if !bytes.Contains(first, []byte(`"epoch":1`)) {
		t.Fatalf("first subscriber update %s", first)
	}
}

// staticClock pins the registry's span clock so JSONL traces carry no
// wall-time noise and can be compared byte-for-byte.
type staticClock struct{}

func (staticClock) Now() time.Duration { return 0 }

// passiveTrace runs training with a JSONL sink attached and returns the
// exact trace bytes. live and feed model a telemetry server being attached;
// neither may change the passive trace.
func passiveTrace(t *testing.T, ds *data.Dataset, live bool, withFeed bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	reg := obs.New().WithClock(staticClock{}).StreamTo(&buf)
	if live {
		reg.EnableLive()
	}
	var feed *obs.RunFeed
	if withFeed {
		feed = obs.NewRunFeed()
	}
	diagRun(t, ds, nil, feed, reg)
	return buf.Bytes()
}

// passiveTraceWithEvents is passiveTrace with the introspection plane's
// event log attached: epoch spans land in the events ring, never in the
// registry's JSONL sink.
func passiveTraceWithEvents(t *testing.T, ds *data.Dataset, el *obs.EventLog) []byte {
	t.Helper()
	var buf bytes.Buffer
	reg := obs.New().WithClock(staticClock{}).StreamTo(&buf)
	src := shuffle.NewMemSource(ds, 50)
	st, err := shuffle.New(shuffle.KindCorgiPile, src, shuffle.Options{
		Seed: 7, BufferFraction: 0.1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(RunConfig{
		Strategy:  st,
		Model:     ml.SVM{},
		Opt:       ml.NewSGD(0.05),
		Features:  ds.Features,
		Epochs:    5,
		BatchSize: 1,
		TrainEval: ds,
		Obs:       reg,
		RunName:   "diag-test",
		Events:    el,
		Trace:     "purity-t1",
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTracePurity: the JSONL event trace of a passive run must be
// bit-for-bit identical whether or not live telemetry (feed, live-mode
// gauges) is attached — the PR's hard compatibility constraint.
func TestTracePurity(t *testing.T) {
	ds := diagDataset()
	base := passiveTrace(t, ds, false, false)
	if len(base) == 0 {
		t.Fatal("no trace emitted")
	}
	if bytes.Contains(base, []byte("shuffle.buffer")) {
		t.Fatal("passive trace mentions live-only buffer gauges")
	}
	if bytes.Contains(base, []byte(`"name":"diag"`)) {
		t.Fatal("passive trace contains diag events without Diag config")
	}
	if bytes.Contains(base, []byte(`"plan`)) {
		t.Fatal("passive trace contains plan-profile events without Profile; " +
			"see the executor's TestProfiledTraceBytesIdentical for the profiled case")
	}
	withFeed := passiveTrace(t, ds, false, true)
	if !bytes.Equal(base, withFeed) {
		t.Fatal("attaching a RunFeed changed the JSONL trace")
	}
	withLive := passiveTrace(t, ds, true, true)
	if !bytes.Equal(base, withLive) {
		t.Fatal("enabling live mode changed the JSONL trace")
	}

	// The introspection plane: attaching an EventLog must not perturb the
	// passive trace by a byte — its spans live in a separate ring with its
	// own (here unattached) sink.
	el := obs.NewEventLog(64)
	withEvents := passiveTraceWithEvents(t, ds, el)
	if !bytes.Equal(base, withEvents) {
		t.Fatal("attaching an EventLog changed the JSONL trace")
	}
	if spans := el.Spans(); len(spans) != 5 {
		t.Fatalf("event log recorded %d epoch spans, want 5", len(spans))
	} else if spans[0].Trace != "purity-t1" || spans[0].Name != obs.EvSpanEpoch {
		t.Fatalf("span %+v, want trace purity-t1 name epoch", spans[0])
	}
	for _, marker := range []string{`"ev":"event"`, `"ev":"tracespan"`} {
		if bytes.Contains(base, []byte(marker)) {
			t.Fatalf("passive trace contains introspection marker %s", marker)
		}
	}
	// And a nil event log run matches too (the zero-cost-when-idle path).
	withNil := passiveTraceWithEvents(t, ds, nil)
	if !bytes.Equal(base, withNil) {
		t.Fatal("nil-EventLog run diverged from the base passive trace")
	}

	// The metrics-history plane: a sampler goroutine reading Snapshot (with
	// peak tracking armed) must not perturb the trace by a byte either —
	// History observes the registry, never writes to it.
	withHist := passiveTraceWithHistory(t, ds)
	if !bytes.Equal(base, withHist) {
		t.Fatal("attaching a metrics History sampler changed the JSONL trace")
	}
}

// passiveTraceWithHistory is passiveTrace with the metrics-history plane
// attached: a live sampler ticking at 1ms plus armed peak tracking, the
// maximal read-side load the history plane can put on a registry.
func passiveTraceWithHistory(t *testing.T, ds *data.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	reg := obs.New().WithClock(staticClock{}).StreamTo(&buf)
	reg.EnablePeaks()
	hist := obs.NewHistory(obs.HistoryConfig{Interval: time.Millisecond})
	hist.Start(reg)
	diagRun(t, ds, nil, nil, reg)
	hist.Stop()
	hist.Sample(reg)
	if len(hist.Names()) == 0 {
		t.Fatal("history sampled nothing during the run")
	}
	return buf.Bytes()
}

// TestLiveGaugesGatedDuringRun: a passive run leaves the live-only buffer
// gauges untouched; a live (serve-attached) run records them.
func TestLiveGaugesGatedDuringRun(t *testing.T) {
	ds := diagDataset()

	passive := obs.New()
	diagRun(t, ds, nil, nil, passive)
	if v := passive.Gauge(obs.ShuffleBufferTuples); v != 0 {
		t.Fatalf("passive run recorded buffer gauge %v", v)
	}

	live := obs.New()
	live.EnableLive()
	diagRun(t, ds, nil, nil, live)
	if v := live.Gauge(obs.ShuffleBufferTuples); v <= 0 {
		t.Fatalf("live run buffer-tuples gauge %v, want > 0", v)
	}
	occ := live.Gauge(obs.ShuffleBufferOccupancy)
	if occ <= 0 || occ > 1 {
		t.Fatalf("live run buffer occupancy %v, want in (0, 1]", occ)
	}
}
