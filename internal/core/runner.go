// Package core ties the system together: it runs SGD training over a
// shuffling strategy with simulated-time accounting, and implements the
// paper's analytical tools — the block-variance factor h_D and the
// Theorem 1 convergence bound.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
)

// RunConfig describes one training run.
type RunConfig struct {
	// Strategy streams epochs of training tuples.
	Strategy shuffle.Strategy
	// Model and Optimizer define the learner.
	Model ml.Model
	Opt   ml.Optimizer
	// Features is the dataset dimensionality (sizes the weight vector).
	Features int
	// Epochs is the number of passes (the paper's S).
	Epochs int
	// BatchSize selects per-tuple (<=1) or mini-batch SGD.
	BatchSize int
	// Procs is the number of gradient worker goroutines for mini-batch
	// steps (0 = GOMAXPROCS, 1 = single-threaded). The loss trace is
	// bit-for-bit identical at every setting; see ml.BatchEngine.
	Procs int
	// Clock, when non-nil, receives per-tuple gradient-compute charges and
	// is sampled for per-epoch simulated timestamps.
	Clock *iosim.Clock
	// TrainEval and TestEval, when non-nil, are evaluated after each epoch
	// (at no simulated cost — evaluation is out-of-band in the paper too).
	TrainEval *data.Dataset
	TestEval  *data.Dataset
	// InitWeights, when non-nil, initializes the weight vector (needed for
	// the MLP); otherwise weights start at zero.
	InitWeights func(w []float64)
	// Seed seeds any model weight initialization randomness.
	Seed int64
	// ComputeScale multiplies the per-tuple gradient compute cost charged
	// to the clock; it models systems with heavier per-tuple work (MADlib's
	// extra statistics, PyTorch's per-call interpreter overhead). Zero
	// means 1.
	ComputeScale float64
	// Obs, when non-nil, receives per-epoch spans and training counters;
	// Result.Breakdown then carries one cross-layer metrics row per epoch.
	// Attach the same registry to the device (Device.WithObs) and strategy
	// (shuffle.Options.Obs) to get the full I/O + shuffle + compute
	// decomposition.
	Obs *obs.Registry
	// Diag, when non-nil, enables the convergence diagnostics: per-epoch
	// gradient-norm, update-norm and loss-delta tracking plus the
	// plateau/divergence detector. Result.Diag and Result.Verdict carry
	// the outcome. Diagnostics are read-only: the loss trace and weight
	// trajectory are bit-for-bit identical with or without them.
	Diag *DiagConfig
	// Feed, when non-nil, receives one live RunStatus update per epoch
	// (plus a final one with Done set) — the telemetry server's /run data.
	Feed *obs.RunFeed
	// RunName labels feed updates (free-form, e.g. "corgitrain svm/higgs").
	RunName string
	// Faults, when non-nil, is the fault report the strategy's resilient
	// source accumulates into (shuffle.Options.FaultReport); its summary is
	// copied to Result.Faults when the run completes.
	Faults *shuffle.FaultReport
	// Ctx, when non-nil, cancels the run: Run checks it between epochs and
	// every few hundred tuples inside an epoch, then returns the context's
	// error. A nil Ctx never cancels and adds no per-tuple work.
	Ctx context.Context
	// Events, when non-nil, receives one wall-clock "epoch" span record per
	// epoch, stamped with Trace — the introspection plane's timeline. A nil
	// Events adds no work and never touches the clock, and attaching one
	// never changes the Obs registry's JSONL trace (the rings are separate;
	// TestTracePurity pins this).
	Events *obs.EventLog
	// Trace is the request-scoped trace ID stamped on emitted span records.
	Trace string
}

// EpochPoint records the state after one epoch — one x-axis point of the
// paper's convergence plots.
type EpochPoint struct {
	// Epoch is the 1-based epoch number.
	Epoch int
	// Seconds is the simulated elapsed time since the start of the run,
	// including any strategy preprocessing (e.g. Shuffle Once's full sort).
	Seconds float64
	// AvgLoss is the mean streaming loss observed during the epoch.
	AvgLoss float64
	// TrainAcc and TestAcc are accuracies on the evaluation sets (or R²
	// for regression datasets); NaN-free zero when no set was provided.
	TrainAcc float64
	TestAcc  float64
	// Tuples is the number of examples consumed this epoch.
	Tuples int
}

// Result is a completed training run.
type Result struct {
	// Points holds one entry per epoch.
	Points []EpochPoint
	// W is the final weight vector.
	W []float64
	// PrepSeconds is the simulated time consumed before epoch 1 started
	// (strategy preprocessing such as Shuffle Once).
	PrepSeconds float64
	// Breakdown holds one cross-layer metrics row per epoch when an
	// obs.Registry was attached via RunConfig.Obs (nil otherwise).
	Breakdown []obs.EpochMetrics
	// Faults summarizes retry/quarantine/crash activity when a fault report
	// was attached via RunConfig.Faults (zero value otherwise).
	Faults shuffle.FaultSummary
	// Diag holds one diagnostics row per epoch and Verdict the detector's
	// final state when diagnostics were enabled via RunConfig.Diag
	// (nil / empty otherwise).
	Diag    []EpochDiag
	Verdict Verdict
	// Plan holds the executed plan's per-operator profile when the run went
	// through the instrumented executor (TrainConfig.Explain, EXPLAIN
	// ANALYZE); nil for strategy-iterator runs.
	Plan *obs.PlanStats
}

// Final returns the last epoch point (zero value for an empty run).
func (r *Result) Final() EpochPoint {
	if len(r.Points) == 0 {
		return EpochPoint{}
	}
	return r.Points[len(r.Points)-1]
}

// Run executes the configured training and returns its convergence trace.
func Run(cfg RunConfig) (*Result, error) {
	if cfg.Strategy == nil || cfg.Model == nil || cfg.Opt == nil {
		return nil, fmt.Errorf("core: Strategy, Model and Opt are required")
	}
	dim := cfg.Model.Dim(cfg.Features)
	w := make([]float64, dim)
	if cfg.InitWeights != nil {
		cfg.InitWeights(w)
	}
	cfg.Opt.Reset(dim)

	trainer := ml.NewTrainer(cfg.Model, cfg.Opt, cfg.BatchSize)
	trainer.Procs = cfg.Procs
	trainer.Obs = cfg.Obs
	trainer.TrackGradNorm = cfg.Diag != nil
	defer trainer.Close()
	var start time.Duration
	if cfg.Clock != nil {
		start = cfg.Clock.Now()
	}
	if cfg.Clock != nil || cfg.Obs != nil {
		scale := cfg.ComputeScale
		if scale == 0 {
			scale = 1
		}
		trainer.OnTuple = func(t *data.Tuple) {
			cost := time.Duration(float64(ml.GradCost(t.NNZ())) * scale)
			if cfg.Clock != nil {
				cfg.Clock.Advance(cost)
			}
			cfg.Obs.AddDuration(obs.SGDGradNanos, cost)
		}
	}

	res := &Result{W: w}
	if cfg.Clock != nil {
		// Preprocessing (Shuffle Once) happened when the strategy was
		// constructed; the caller's clock already includes it. Record zero
		// here; callers measuring prep wrap construction themselves.
		res.PrepSeconds = 0
	}

	var lastNow time.Duration
	if cfg.Clock != nil {
		lastNow = start
	}
	var tracker *DiagTracker
	var wPrev []float64
	if cfg.Diag != nil {
		tracker = NewDiagTracker(*cfg.Diag)
		wPrev = make([]float64, len(w))
	}
	wallStart := time.Now()
	var totalTuples int64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: train canceled at epoch %d: %w", epoch+1, err)
			}
		}
		if tracker != nil {
			copy(wPrev, w)
		}
		var before obs.Snapshot
		if cfg.Obs != nil {
			before = cfg.Obs.Snapshot()
		}
		sp := cfg.Obs.Span(obs.SpanEpoch)
		esp := cfg.Events.StartSpan(cfg.Trace, obs.EvSpanEpoch)
		it, err := cfg.Strategy.StartEpoch(epoch)
		if err != nil {
			sp.End()
			esp.End()
			return nil, fmt.Errorf("core: epoch %d: %w", epoch, err)
		}
		next := it.Next
		if cfg.Ctx != nil {
			// Amortize ctx.Err's lock over the hot loop; a cancel still
			// lands within a few hundred tuples of gradient work.
			var sinceCheck int
			next = func() (*data.Tuple, bool) {
				if sinceCheck++; sinceCheck >= 256 {
					sinceCheck = 0
					if cfg.Ctx.Err() != nil {
						return nil, false
					}
				}
				return it.Next()
			}
		}
		stats := trainer.RunEpoch(w, next)
		spanSecs := sp.End().Seconds()
		esp.End()
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: train canceled at epoch %d: %w", epoch+1, err)
			}
		}
		if err := it.Err(); err != nil {
			return nil, fmt.Errorf("core: epoch %d stream: %w", epoch, err)
		}
		p := EpochPoint{Epoch: epoch + 1, AvgLoss: stats.AvgLoss, Tuples: stats.Tuples}
		if cfg.Clock != nil {
			p.Seconds = (cfg.Clock.Now() - start).Seconds()
		}
		if cfg.TrainEval != nil {
			p.TrainAcc = evalMetric(cfg.Model, w, cfg.TrainEval)
		}
		if cfg.TestEval != nil {
			p.TestAcc = evalMetric(cfg.Model, w, cfg.TestEval)
		}
		res.Points = append(res.Points, p)
		if cfg.Obs != nil {
			epochSecs := spanSecs
			if cfg.Clock != nil {
				now := cfg.Clock.Now()
				epochSecs = (now - lastNow).Seconds()
				lastNow = now
			}
			m := obs.EpochFromDelta(epoch+1, epochSecs, stats.AvgLoss,
				cfg.Obs.Snapshot().DeltaFrom(before))
			cfg.Obs.SetGauge(obs.SGDLoss, stats.AvgLoss)
			cfg.Obs.EmitEpoch(m)
			res.Breakdown = append(res.Breakdown, m)
		}
		var d EpochDiag
		if tracker != nil {
			delta, verdict := tracker.Observe(stats.AvgLoss)
			d = EpochDiag{
				Epoch:      epoch + 1,
				GradNorm:   stats.GradNorm(),
				UpdateNorm: L2Delta(w, wPrev),
				LossDelta:  delta,
				Verdict:    verdict,
			}
			res.Diag = append(res.Diag, d)
			res.Verdict = verdict
			EmitDiag(cfg.Obs, d)
		}
		totalTuples += int64(stats.Tuples)
		publishStatus(cfg, p, d, totalTuples, wallStart, epoch+1 == cfg.Epochs)
	}
	if cfg.Faults != nil {
		res.Faults = cfg.Faults.Summary()
	}
	return res, nil
}

// publishStatus pushes one epoch's live status to the run feed, folding in
// the shuffle-buffer gauges and fault counters the registry holds.
func publishStatus(cfg RunConfig, p EpochPoint, d EpochDiag, tuples int64, wallStart time.Time, done bool) {
	if cfg.Feed == nil {
		return
	}
	st := obs.RunStatus{
		Run:         cfg.RunName,
		Epoch:       p.Epoch,
		Epochs:      cfg.Epochs,
		Loss:        p.AvgLoss,
		TrainAcc:    p.TrainAcc,
		GradNorm:    d.GradNorm,
		UpdateNorm:  d.UpdateNorm,
		LossDelta:   d.LossDelta,
		Verdict:     string(d.Verdict),
		Tuples:      tuples,
		SimSeconds:  p.Seconds,
		WallSeconds: time.Since(wallStart).Seconds(),
		Done:        done,
	}
	st.FillFromRegistry(cfg.Obs)
	cfg.Feed.Publish(st)
}

// evalMetric returns accuracy for classification datasets and R² for
// regression datasets.
func evalMetric(m ml.Model, w []float64, ds *data.Dataset) float64 {
	if ds.Task == data.TaskRegression {
		return ml.R2(m, w, ds)
	}
	return ml.Accuracy(m, w, ds)
}

// MLPInit returns an InitWeights function for an MLP model.
func MLPInit(m ml.MLP, features int, seed int64) func(w []float64) {
	return func(w []float64) {
		m.InitWeights(w, features, rand.New(rand.NewSource(seed)))
	}
}
