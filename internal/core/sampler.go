package core

import "math/rand"

// BlockSampler draws blocks without replacement — step (Sample) of
// Algorithm 1. Each epoch is a fresh permutation of the N block ids,
// consumed n at a time.
type BlockSampler struct {
	n    int
	rng  *rand.Rand
	perm []int
	next int
}

// NewBlockSampler returns a sampler over n blocks.
func NewBlockSampler(n int, rng *rand.Rand) *BlockSampler {
	return &BlockSampler{n: n, rng: rng}
}

// StartEpoch draws a fresh permutation of the block ids.
func (s *BlockSampler) StartEpoch() {
	s.perm = s.rng.Perm(s.n)
	s.next = 0
}

// Draw returns the next k block ids without replacement within the current
// epoch. Fewer than k are returned at the permutation's tail; nil means the
// epoch is exhausted.
func (s *BlockSampler) Draw(k int) []int {
	if s.perm == nil {
		s.StartEpoch()
	}
	if s.next >= len(s.perm) {
		return nil
	}
	hi := s.next + k
	if hi > len(s.perm) {
		hi = len(s.perm)
	}
	out := s.perm[s.next:hi]
	s.next = hi
	return out
}

// Remaining reports how many block ids are left in the current epoch.
func (s *BlockSampler) Remaining() int {
	if s.perm == nil {
		return s.n
	}
	return len(s.perm) - s.next
}
