package core

import (
	"math"

	"corgipile/internal/obs"
)

// This file implements convergence diagnostics: per-epoch gradient-norm,
// update-norm, and loss-delta tracking with a plateau/divergence detector.
// The signals mirror what the paper's evaluation reads off its convergence
// plots (loss trajectory per epoch, Sec. 6) and what "Random Shuffling
// Beats SGD after Finite Epochs" analyzes in terms of gradient-norm decay;
// the detector turns them into an actionable verdict a live scraper (or
// Corgi²-style tuner) can react to mid-run.
//
// Diagnostics are strictly read-only observers of the training state:
// enabling them never changes the weight trajectory or the loss trace.

// Verdict classifies a run's convergence health.
type Verdict string

const (
	// VerdictConverging: the loss is still improving.
	VerdictConverging Verdict = "converging"
	// VerdictPlateau: the relative loss improvement stayed below the
	// plateau tolerance for the configured window of epochs.
	VerdictPlateau Verdict = "plateau"
	// VerdictDiverging: the loss rose (or went non-finite) for the
	// configured window of epochs.
	VerdictDiverging Verdict = "diverging"
	// VerdictWarmup: not enough epochs yet to judge.
	VerdictWarmup Verdict = "warmup"
)

// DiagConfig enables and tunes the convergence diagnostics.
type DiagConfig struct {
	// Window is the number of consecutive qualifying epochs before a
	// plateau or divergence verdict fires (default 3).
	Window int
	// PlateauTol is the relative loss-improvement threshold below which an
	// epoch counts toward a plateau (default 1e-3).
	PlateauTol float64
}

func (c DiagConfig) window() int {
	if c.Window <= 0 {
		return 3
	}
	return c.Window
}

func (c DiagConfig) plateauTol() float64 {
	if c.PlateauTol <= 0 {
		return 1e-3
	}
	return c.PlateauTol
}

// EpochDiag is one epoch's convergence diagnostics.
type EpochDiag struct {
	// Epoch is 1-based.
	Epoch int `json:"epoch"`
	// GradNorm is the RMS per-optimizer-step gradient L2 norm.
	GradNorm float64 `json:"grad_norm"`
	// UpdateNorm is the L2 norm of the epoch's total weight change.
	UpdateNorm float64 `json:"update_norm"`
	// LossDelta is the previous epoch's loss minus this epoch's (positive
	// = improving; 0 for the first epoch).
	LossDelta float64 `json:"loss_delta"`
	// Verdict is the detector's state after this epoch.
	Verdict Verdict `json:"verdict"`
}

// DiagTracker folds per-epoch losses into a running verdict. It is shared
// by core.Run and the executor's SGD operator.
type DiagTracker struct {
	cfg      DiagConfig
	prevLoss float64
	epochs   int
	flatRun  int // consecutive epochs under the plateau tolerance
	riseRun  int // consecutive epochs with rising (or non-finite) loss
}

// NewDiagTracker returns a tracker with the given configuration.
func NewDiagTracker(cfg DiagConfig) *DiagTracker { return &DiagTracker{cfg: cfg} }

// Observe ingests one epoch's loss and returns the loss delta and the
// verdict after this epoch.
func (d *DiagTracker) Observe(loss float64) (lossDelta float64, v Verdict) {
	d.epochs++
	if d.epochs == 1 {
		d.prevLoss = loss
		if !isFinite(loss) {
			d.riseRun = d.cfg.window() // non-finite from the start
			return 0, VerdictDiverging
		}
		return 0, VerdictWarmup
	}
	lossDelta = d.prevLoss - loss

	if !isFinite(loss) || loss > d.prevLoss {
		d.riseRun++
	} else {
		d.riseRun = 0
	}
	scale := math.Abs(d.prevLoss)
	if scale < 1e-12 {
		scale = 1e-12
	}
	if isFinite(loss) && math.Abs(lossDelta)/scale < d.cfg.plateauTol() {
		d.flatRun++
	} else if isFinite(loss) {
		d.flatRun = 0
	}
	d.prevLoss = loss

	switch {
	case d.riseRun >= d.cfg.window():
		v = VerdictDiverging
	case d.flatRun >= d.cfg.window():
		v = VerdictPlateau
	default:
		v = VerdictConverging
	}
	return lossDelta, v
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// L2Delta returns ||a-b||₂ (slices must be equal length).
func L2Delta(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// EmitDiag records one epoch's diagnostics into the registry: gauges under
// the sgd.* names plus a "diag" trace event when a sink is attached.
func EmitDiag(reg *obs.Registry, d EpochDiag) {
	reg.SetGauge(obs.SGDGradNorm, d.GradNorm)
	reg.SetGauge(obs.SGDUpdateNorm, d.UpdateNorm)
	reg.SetGauge(obs.SGDLossDelta, d.LossDelta)
	reg.EmitEvent("diag", map[string]any{
		"epoch":       d.Epoch,
		"grad_norm":   d.GradNorm,
		"update_norm": d.UpdateNorm,
		"loss_delta":  d.LossDelta,
		"verdict":     string(d.Verdict),
	})
}
