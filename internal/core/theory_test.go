package core

import (
	"math"
	"testing"

	"corgipile/internal/data"
	"corgipile/internal/ml"
)

func TestHDFactorClusteredExceedsShuffled(t *testing.T) {
	cfg := data.SyntheticConfig{Tuples: 1000, Features: 8, Separation: 3, Seed: 51}
	cfg.Order = data.OrderClustered
	clustered := data.SyntheticBinary(cfg)
	cfg.Order = data.OrderShuffled
	shuffled := data.SyntheticBinary(cfg)

	m := ml.LogisticRegression{}
	w := make([]float64, m.Dim(8)) // at w=0 gradients depend strongly on label
	hClustered := HDFactor(m, w, clustered, 50)
	hShuffled := HDFactor(m, w, shuffled, 50)

	t.Logf("h_D clustered=%.2f shuffled=%.2f", hClustered, hShuffled)
	if hClustered < 5*hShuffled {
		t.Fatalf("clustered h_D (%.2f) should dwarf shuffled h_D (%.2f)", hClustered, hShuffled)
	}
	// Shuffled blocks are near-i.i.d. samples: h_D ≈ 1 (allow slack).
	if hShuffled > 3 {
		t.Fatalf("shuffled h_D = %.2f, want ~1", hShuffled)
	}
	// h_D is bounded by ~b for fully clustered identical-ish blocks.
	if hClustered > 50*1.5 {
		t.Fatalf("clustered h_D = %.2f exceeds block size bound", hClustered)
	}
}

func TestHDFactorIdenticalTuples(t *testing.T) {
	// All tuples identical → every block mean equals every tuple gradient →
	// σ² = 0 and block variance 0 → defined as 1.
	ds := &data.Dataset{Task: data.TaskBinary, Features: 2, Classes: 2}
	for i := 0; i < 100; i++ {
		ds.Tuples = append(ds.Tuples, data.Tuple{ID: int64(i), Label: 1, Dense: []float64{1, 2}})
	}
	m := ml.LogisticRegression{}
	w := make([]float64, m.Dim(2))
	if h := HDFactor(m, w, ds, 10); h != 1 {
		t.Fatalf("identical-tuple h_D = %v, want 1", h)
	}
}

func TestHDFactorEmpty(t *testing.T) {
	if HDFactor(ml.SVM{}, nil, &data.Dataset{}, 10) != 0 {
		t.Fatal("empty dataset h_D must be 0")
	}
}

func TestTheorem1BoundFullBufferRemovesLeadingTerm(t *testing.T) {
	// α = 1 (n = N): the 1/T term vanishes — full-shuffle SGD rate. For
	// large T the higher-order terms are negligible and the full buffer
	// wins.
	full := Theorem1Bound(BoundParams{N: 100, Nbuf: 100, B: 50, M: 5000, HD: 10, Sigma2: 1, T: 5e6})
	tiny := Theorem1Bound(BoundParams{N: 100, Nbuf: 1, B: 50, M: 5000, HD: 10, Sigma2: 1, T: 5e6})
	if full >= tiny {
		t.Fatalf("full-buffer bound %v should beat single-block bound %v", full, tiny)
	}
}

func TestTheorem1BoundMonotoneInBuffer(t *testing.T) {
	prev := math.Inf(1)
	for _, nbuf := range []int{1, 10, 25, 50, 100} {
		b := Theorem1Bound(BoundParams{N: 100, Nbuf: nbuf, B: 100, M: 10000, HD: 50, Sigma2: 1, T: 1e6})
		if b > prev {
			t.Fatalf("bound increased at n=%d: %v > %v", nbuf, b, prev)
		}
		prev = b
	}
}

func TestTheorem1BoundMonotoneInHD(t *testing.T) {
	lo := Theorem1Bound(BoundParams{N: 100, Nbuf: 10, B: 100, M: 10000, HD: 1, Sigma2: 1, T: 1e6})
	hi := Theorem1Bound(BoundParams{N: 100, Nbuf: 10, B: 100, M: 10000, HD: 100, Sigma2: 1, T: 1e6})
	if hi <= lo {
		t.Fatal("bound must grow with h_D")
	}
}

func TestTheorem1BoundDecaysWithT(t *testing.T) {
	p := BoundParams{N: 100, Nbuf: 10, B: 100, M: 10000, HD: 10, Sigma2: 1}
	p.T = 10000
	early := Theorem1Bound(p)
	p.T = 1000000
	late := Theorem1Bound(p)
	if late >= early {
		t.Fatal("bound must decay with more updates")
	}
}

func TestTheorem1BoundDegenerate(t *testing.T) {
	if !math.IsInf(Theorem1Bound(BoundParams{N: 1, Nbuf: 1, T: 100}), 1) {
		t.Fatal("N<=1 should be infinite")
	}
	if !math.IsInf(Theorem1Bound(BoundParams{N: 10, Nbuf: 1, T: 0}), 1) {
		t.Fatal("T<=0 should be infinite")
	}
}

func TestAlpha(t *testing.T) {
	if Alpha(1, 100) != 0 {
		t.Fatal("α(1, N) must be 0")
	}
	if Alpha(100, 100) != 1 {
		t.Fatal("α(N, N) must be 1")
	}
	if Alpha(5, 1) != 1 {
		t.Fatal("degenerate N=1 should clamp to 1")
	}
}

func TestTheorem2BoundShapes(t *testing.T) {
	base := BoundParams{N: 100, Nbuf: 10, B: 100, M: 10000, HD: 10, Sigma2: 1, T: 1e6}
	// Decays with T.
	early, late := base, base
	early.T, late.T = 1e4, 1e8
	if Theorem2Bound(late) >= Theorem2Bound(early) {
		t.Fatal("Theorem 2 bound must decay with T")
	}
	// Grows with h_D.
	hi := base
	hi.HD = 100
	if Theorem2Bound(hi) <= Theorem2Bound(base) {
		t.Fatal("Theorem 2 bound must grow with h_D")
	}
	// α = 1 takes the dedicated full-shuffle branch: 1/T^{2/3} + γ'm³/T.
	full := base
	full.Nbuf = 100
	want := math.Pow(float64(full.T), -2.0/3.0) + float64(full.M)*float64(full.M)*float64(full.M)/float64(full.T)
	if got := Theorem2Bound(full); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("α=1 branch = %v, want %v", got, want)
	}
}

func TestTheorem2BoundDegenerate(t *testing.T) {
	if !math.IsInf(Theorem2Bound(BoundParams{N: 1, Nbuf: 1, T: 10}), 1) {
		t.Fatal("N<=1 must be infinite")
	}
	if !math.IsInf(Theorem2Bound(BoundParams{N: 10, Nbuf: 2, T: 0}), 1) {
		t.Fatal("T<=0 must be infinite")
	}
	if !math.IsInf(Theorem2Bound(BoundParams{N: 10, Nbuf: 2, B: 5, M: 50, HD: 0, Sigma2: 0, T: 100}), 1) {
		t.Fatal("zero variance with partial buffer must be infinite")
	}
}

func TestRecommendBuffer(t *testing.T) {
	p := BoundParams{N: 256, B: 100, M: 25600, HD: 80, Sigma2: 1, T: 256000}
	n, bound, full := RecommendBuffer(p, 1.10)
	if n < 1 || n > 256 {
		t.Fatalf("recommended %d blocks", n)
	}
	if bound > full*1.10 {
		t.Fatalf("recommended bound %v exceeds tolerance of full %v", bound, full)
	}
	// A near-zero tolerance forces (close to) the full buffer.
	nStrict, _, _ := RecommendBuffer(p, 1.0000001)
	if nStrict < n {
		t.Fatal("stricter tolerance cannot recommend a smaller buffer")
	}
	// Default tolerance on zero input.
	if nDef, _, _ := RecommendBuffer(p, 0); nDef < 1 {
		t.Fatal("default tolerance broken")
	}
}
