package shuffle

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/storage"
)

// corruptSource fails chosen blocks permanently with storage.ErrCorrupt.
type corruptSource struct {
	Source
	bad map[int]bool
}

func (c *corruptSource) ReadBlock(i int) ([]data.Tuple, error) {
	if c.bad[i] {
		return nil, fmt.Errorf("injected: %w", storage.ErrCorrupt)
	}
	return c.Source.ReadBlock(i)
}

// blinkSource fails each block's first failures reads transiently, then
// serves it. It is safe for concurrent use (pipelined refills).
type blinkSource struct {
	Source
	mu       sync.Mutex
	failures int
	left     map[int]int
}

func newBlink(src Source, failures int) *blinkSource {
	return &blinkSource{Source: src, failures: failures, left: make(map[int]int)}
}

func (b *blinkSource) ReadBlock(i int) ([]data.Tuple, error) {
	b.mu.Lock()
	n, seen := b.left[i]
	if !seen {
		n = b.failures
	}
	if n > 0 {
		b.left[i] = n - 1
		b.mu.Unlock()
		return nil, fmt.Errorf("blink block %d: %w", i, iosim.ErrTransient)
	}
	b.left[i] = 0
	b.mu.Unlock()
	return b.Source.ReadBlock(i)
}

func TestResilientDisabledPassthrough(t *testing.T) {
	src := clusteredSource(100, 10)
	wrapped, report := NewResilientSource(src, Resilience{}, nil, nil)
	if wrapped != Source(src) {
		t.Fatal("disabled resilience must return the source unchanged")
	}
	if report == nil || report.Summary().String() != "clean" {
		t.Fatalf("want fresh clean report, got %+v", report.Summary())
	}
}

func TestResilientPreservesFullShuffler(t *testing.T) {
	src := clusteredSource(100, 10)
	wrapped, _ := NewResilientSource(src, Resilience{OnCorrupt: SkipCorrupt}, nil, nil)
	if _, ok := wrapped.(FullShuffler); !ok {
		t.Fatal("wrapping a FullShuffler must preserve the interface")
	}
	plain, _ := NewResilientSource(&corruptSource{Source: src}, Resilience{OnCorrupt: SkipCorrupt}, nil, nil)
	if _, ok := plain.(FullShuffler); ok {
		t.Fatal("wrapping a plain Source must not invent FullShuffler")
	}
}

func TestTransientStormWithinBudgetSameStream(t *testing.T) {
	const n, perBlock = 300, 20
	clean := clusteredSource(n, perBlock)
	stClean, err := New(KindCorgiPile, clean, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	itClean, err := stClean.StartEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, itClean)

	clock := iosim.NewClock()
	flaky := newBlink(clusteredSource(n, perBlock).WithClock(clock, 0), 2)
	report := NewFaultReport()
	st, err := New(KindCorgiPile, flaky, Options{
		Seed: 9,
		Resilience: Resilience{Retry: storage.RetryPolicy{
			MaxAttempts: 4, Backoff: time.Millisecond, Seed: 9}},
		FaultReport: report,
	})
	if err != nil {
		t.Fatal(err)
	}
	it, err := st.StartEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	if it.Err() != nil {
		t.Fatalf("storm within budget must not surface: %v", it.Err())
	}
	if len(got) != len(want) {
		t.Fatalf("stream length %d, fault-free %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stream diverged at %d: %d vs %d", i, got[i], want[i])
		}
	}
	s := report.Summary()
	if s.TransientErrors == 0 || s.Retries == 0 {
		t.Fatalf("report missed the storm: %+v", s)
	}
	if clock.Now() == 0 {
		t.Fatal("backoff must charge the simulated clock")
	}
	if s.Degraded() {
		t.Fatal("transient-only storm must not quarantine anything")
	}
}

// drainAll exhausts an iterator without asserting on its error.
func drainAll(it Iterator) {
	for {
		if _, ok := it.Next(); !ok {
			return
		}
	}
}

func TestTransientStormBeyondBudgetFails(t *testing.T) {
	flaky := newBlink(clusteredSource(100, 10), 5)
	st, err := New(KindCorgiPile, flaky, Options{
		Seed:       1,
		Resilience: Resilience{Retry: storage.RetryPolicy{MaxAttempts: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	it, err := st.StartEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	drainAll(it)
	if !errors.Is(it.Err(), iosim.ErrTransient) {
		t.Fatalf("exhausted budget should surface ErrTransient, got %v", it.Err())
	}
}

func TestSkipCorruptQuarantinesAcrossEpochs(t *testing.T) {
	const n, perBlock = 300, 20 // 15 blocks; one bad block is 6.7% > default cap
	bad := &corruptSource{Source: clusteredSource(n, perBlock), bad: map[int]bool{3: true}}
	report := NewFaultReport()
	st, err := New(KindCorgiPile, bad, Options{
		Seed: 2,
		Resilience: Resilience{
			OnCorrupt:       SkipCorrupt,
			MaxSkipFraction: 0.10,
		},
		FaultReport: report,
	})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 2; epoch++ {
		it, err := st.StartEpoch(epoch)
		if err != nil {
			t.Fatal(err)
		}
		ids := drain(t, it)
		if it.Err() != nil {
			t.Fatalf("epoch %d: SkipCorrupt must keep training: %v", epoch, it.Err())
		}
		if len(ids) != n-perBlock {
			t.Fatalf("epoch %d: got %d tuples, want %d (one block skipped)", epoch, len(ids), n-perBlock)
		}
		for _, id := range ids {
			if id >= 60 && id < 80 { // block 3 holds IDs [60,80)
				t.Fatalf("epoch %d: quarantined tuple %d appeared", epoch, id)
			}
		}
	}
	s := report.Summary()
	if len(s.SkippedBlocks) != 1 || s.SkippedBlocks[0] != 3 || s.SkippedTuples != perBlock {
		t.Fatalf("quarantine accounting wrong: %+v", s)
	}
	if !s.Degraded() {
		t.Fatal("quarantined run must report Degraded")
	}
}

func TestSkipCorruptBudgetCap(t *testing.T) {
	bad := &corruptSource{Source: clusteredSource(300, 20),
		bad: map[int]bool{1: true, 2: true, 3: true, 4: true}}
	st, err := New(KindCorgiPile, bad, Options{
		Seed: 2,
		Resilience: Resilience{
			OnCorrupt:       SkipCorrupt,
			MaxSkipFraction: 0.10, // 4 bad blocks = 26.7% >> 10%
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	it, err := st.StartEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	drainAll(it)
	if !errors.Is(it.Err(), ErrSkipBudget) {
		t.Fatalf("want ErrSkipBudget, got %v", it.Err())
	}
	if !errors.Is(it.Err(), storage.ErrCorrupt) {
		t.Fatalf("budget error should still expose the corrupt cause: %v", it.Err())
	}
}

func TestFailFastSurfacesCorrupt(t *testing.T) {
	bad := &corruptSource{Source: clusteredSource(100, 10), bad: map[int]bool{2: true}}
	st, err := New(KindCorgiPile, bad, Options{
		Seed: 2,
		// Retry enabled so the wrapper engages; OnCorrupt stays FailFast.
		Resilience: Resilience{Retry: storage.RetryPolicy{MaxAttempts: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	it, err := st.StartEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	drainAll(it)
	if !errors.Is(it.Err(), storage.ErrCorrupt) {
		t.Fatalf("FailFast must surface ErrCorrupt, got %v", it.Err())
	}
}

func TestParseFailurePolicy(t *testing.T) {
	for s, want := range map[string]FailurePolicy{
		"": FailFast, "fail": FailFast, "fail_fast": FailFast,
		"skip": SkipCorrupt, "skip_corrupt": SkipCorrupt,
	} {
		got, err := ParseFailurePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFailurePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFailurePolicy("explode"); err == nil {
		t.Fatal("unknown policy must error")
	}
	if FailFast.String() != "fail" || SkipCorrupt.String() != "skip" {
		t.Fatal("String round trip broken")
	}
}

func TestFaultSummaryString(t *testing.T) {
	if (FaultSummary{}).String() != "clean" {
		t.Fatal("empty summary must read clean")
	}
	s := FaultSummary{TransientErrors: 3, Retries: 2, BackoffSeconds: 0.004,
		SkippedBlocks: []int{5}, SkippedTuples: 20, WorkerCrashes: 1}
	out := s.String()
	for _, want := range []string{"transient=3", "retries=2", "skipped_blocks=1", "worker_crashes=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary %q missing %q", out, want)
		}
	}
}
