package shuffle

import (
	"testing"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/storage"
)

// buildHDDTable materializes a dataset as a table on a fresh HDD device.
func buildHDDTable(t *testing.T, n, features int, blockSize int64) (*storage.Table, *iosim.Clock) {
	t.Helper()
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: n, Features: features, Order: data.OrderClustered, Seed: 31})
	clock := iosim.NewClock()
	dev := iosim.NewDevice(iosim.HDD, clock)
	tab, err := storage.Build(dev, ds, storage.Options{BlockSize: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	return tab, clock
}

// epochCost runs one epoch of the strategy, consuming each tuple with the
// given simulated compute cost, and returns the epoch's simulated duration.
func epochCost(t *testing.T, st Strategy, clock *iosim.Clock, perTuple time.Duration) time.Duration {
	t.Helper()
	start := clock.Now()
	it, err := st.StartEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		clock.Advance(perTuple)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return clock.Now() - start
}

func TestShuffleOnceConstructionCostsMoreThanScan(t *testing.T) {
	tab, clock := buildHDDTable(t, 5000, 32, 32<<10)
	src := TableSource(tab)
	before := clock.Now()
	if _, err := New(KindShuffleOnce, src, Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	shuffleCost := clock.Now() - before

	tab2, clock2 := buildHDDTable(t, 5000, 32, 32<<10)
	st, _ := New(KindNoShuffle, TableSource(tab2), Options{Seed: 1})
	scanCost := epochCost(t, st, clock2, 0)

	if shuffleCost < 2*scanCost {
		t.Fatalf("shuffle-once preprocessing (%v) should far exceed one scan (%v)", shuffleCost, scanCost)
	}
}

func TestCorgiPilePerEpochNearNoShuffle(t *testing.T) {
	// Figure 13: with blocks large enough to amortize the seek (the paper
	// recommends ~10 MB on HDD), CorgiPile's per-epoch time stays within
	// ~50% of No Shuffle. The dataset here is ~40 MB in 8 MB blocks.
	const perTuple = time.Microsecond
	tab, clock := buildHDDTable(t, 20000, 256, 8<<20)
	ns, _ := New(KindNoShuffle, TableSource(tab), Options{Seed: 2})
	nsCost := epochCost(t, ns, clock, perTuple)

	tab2, clock2 := buildHDDTable(t, 20000, 256, 8<<20)
	cp, _ := New(KindCorgiPile, TableSource(tab2), Options{Seed: 2, DoubleBuffer: true})
	cpCost := epochCost(t, cp, clock2, perTuple)

	if cpCost > nsCost*15/10 {
		t.Fatalf("corgipile epoch %v vs no-shuffle %v: overhead too large", cpCost, nsCost)
	}
	if cpCost < nsCost {
		t.Fatalf("corgipile epoch %v should not beat no-shuffle %v on cold reads", cpCost, nsCost)
	}
}

func TestDoubleBufferFasterThanSingle(t *testing.T) {
	// Section 7.3.3: double buffering shortens per-epoch time when compute
	// and I/O are comparable.
	const perTuple = 3 * time.Microsecond
	tab, clock := buildHDDTable(t, 20000, 32, 128<<10)
	single, _ := New(KindCorgiPile, TableSource(tab), Options{Seed: 3, DoubleBuffer: false})
	singleCost := epochCost(t, single, clock, perTuple)

	tab2, clock2 := buildHDDTable(t, 20000, 32, 128<<10)
	double, _ := New(KindCorgiPile, TableSource(tab2), Options{Seed: 3, DoubleBuffer: true})
	doubleCost := epochCost(t, double, clock2, perTuple)

	if doubleCost >= singleCost {
		t.Fatalf("double buffering (%v) should beat single buffering (%v)", doubleCost, singleCost)
	}
}

func TestDoubleBufferEmitsSameTuples(t *testing.T) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 300, Features: 4, Order: data.OrderClustered, Seed: 32})
	clock := iosim.NewClock()
	src := NewMemSource(ds, 15).WithClock(clock, time.Millisecond)
	st, _ := New(KindCorgiPile, src, Options{Seed: 4, DoubleBuffer: true})
	it, _ := st.StartEpoch(0)
	ids := drain(t, it)
	assertPermutation(t, ids, 300)
}

func TestSmallBlocksSlowerThanLargeBlocksOnHDD(t *testing.T) {
	// Figure 14(b): per-epoch time decreases as block size grows.
	small, clockS := buildHDDTable(t, 20000, 32, 16<<10)
	stS, _ := New(KindCorgiPile, TableSource(small), Options{Seed: 5})
	costS := epochCost(t, stS, clockS, 0)

	large, clockL := buildHDDTable(t, 20000, 32, 512<<10)
	stL, _ := New(KindCorgiPile, TableSource(large), Options{Seed: 5})
	costL := epochCost(t, stL, clockL, 0)

	if costL >= costS {
		t.Fatalf("large blocks (%v) should be faster than small blocks (%v)", costL, costS)
	}
}

func TestEpochShuffleCostliestPerEpoch(t *testing.T) {
	tab, clock := buildHDDTable(t, 5000, 128, 1<<20)
	es, _ := New(KindEpochShuffle, TableSource(tab), Options{Seed: 6})
	esCost := epochCost(t, es, clock, 0)

	tab2, clock2 := buildHDDTable(t, 5000, 128, 1<<20)
	cp, _ := New(KindCorgiPile, TableSource(tab2), Options{Seed: 6})
	cpCost := epochCost(t, cp, clock2, 0)

	if esCost <= cpCost {
		t.Fatalf("epoch shuffle per-epoch (%v) should exceed corgipile (%v)", esCost, cpCost)
	}
}

func TestTableSourceRoundTrip(t *testing.T) {
	tab, _ := buildHDDTable(t, 1000, 8, 8<<10)
	src := TableSource(tab)
	if src.NumTuples() != 1000 || src.NumBlocks() != tab.NumBlocks() {
		t.Fatal("TableSource metadata mismatch")
	}
	ts, err := src.ReadBlock(0)
	if err != nil || len(ts) != tab.BlockTuples(0) {
		t.Fatalf("ReadBlock: %v, %d tuples", err, len(ts))
	}
	if src.Clock() == nil {
		t.Fatal("TableSource must expose the device clock")
	}
}

func TestAccessPatternsViaTrace(t *testing.T) {
	// The device trace proves the physical access patterns: No Shuffle is
	// (almost) seek-free, CorgiPile seeks on (almost) every block.
	build := func() (*storage.Table, *iosim.Trace) {
		ds := data.SyntheticBinary(data.SyntheticConfig{
			Tuples: 5000, Features: 16, Order: data.OrderClustered, Seed: 33})
		clock := iosim.NewClock()
		dev := iosim.NewDevice(iosim.HDD, clock)
		trace := dev.WithTrace()
		tab, err := storage.Build(dev, ds, storage.Options{BlockSize: 8 << 10})
		if err != nil {
			t.Fatal(err)
		}
		return tab, trace
	}

	tab, trace := build()
	ns, _ := New(KindNoShuffle, TableSource(tab), Options{Seed: 1})
	epochCost(t, ns, tab.Device().Clock(), 0)
	if f := trace.SeekFraction(); f > 0.05 {
		t.Fatalf("no-shuffle seek fraction = %.2f, want ~0", f)
	}

	tab2, trace2 := build()
	cp, _ := New(KindCorgiPile, TableSource(tab2), Options{Seed: 1})
	epochCost(t, cp, tab2.Device().Clock(), 0)
	if f := trace2.SeekFraction(); f < 0.8 {
		t.Fatalf("corgipile seek fraction = %.2f, want ~1", f)
	}
}
