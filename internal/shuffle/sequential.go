package shuffle

import (
	"math/rand"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/obs"
)

// blockIter streams tuples from a sequence of blocks in a given order,
// reading blocks lazily. It is the shared engine behind No Shuffle (identity
// order), Block-Only Shuffle (random order), and Shuffle Once (identity
// order over a shuffled copy).
//
// Block reads overlap with tuple consumption through a two-deep
// iosim.Pipeline, modelling the operating system's readahead: a sequential
// scan's I/O proceeds while SGD computes on the previous block, exactly the
// overlap real No Shuffle scans enjoy and the baseline CorgiPile's
// double-buffering must be measured against.
type blockIter struct {
	src   Source
	order []int // block ids in visit order
	next  int   // next position in order
	buf   []data.Tuple
	pos   int
	err   error

	clock     *iosim.Clock
	reg       *obs.Registry
	pipe      *iosim.Pipeline
	consStart time.Duration
	consuming bool
}

func newBlockIter(src Source, order []int, reg *obs.Registry) *blockIter {
	it := &blockIter{src: src, order: order, clock: src.Clock(), reg: reg}
	if it.clock != nil {
		it.pipe = iosim.NewPipeline(2, it.clock.Now())
	}
	return it
}

// Next implements Iterator.
func (it *blockIter) Next() (*data.Tuple, bool) {
	for it.pos >= len(it.buf) {
		if it.err != nil || it.next >= len(it.order) {
			it.finishPipeline()
			return nil, false
		}
		it.refill()
		if it.err != nil {
			it.finishPipeline()
			return nil, false
		}
	}
	t := &it.buf[it.pos]
	it.pos++
	return t, true
}

func (it *blockIter) refill() {
	var fillStart time.Duration
	if it.pipe != nil {
		if it.consuming {
			it.consumeFor(it.clock.Now() - it.consStart)
		}
		fillStart = it.clock.Now()
	}
	it.buf, it.err = it.src.ReadBlock(it.order[it.next])
	it.next++
	it.pos = 0
	it.reg.Inc(obs.ShuffleRefills)
	it.reg.Inc(obs.ShuffleBlocks)
	if it.pipe != nil {
		fillCost := it.clock.Now() - fillStart
		it.reg.AddDuration(obs.ShuffleFillNanos, fillCost)
		consStart := it.pipe.Fill(fillCost)
		it.clock.Set(consStart)
		it.consStart = consStart
		it.consuming = true
	}
}

// consumeFor closes one consume interval on the pipeline and reports it.
func (it *blockIter) consumeFor(d time.Duration) {
	it.pipe.Consume(d)
	it.reg.AddDuration(obs.ShuffleConsumeNanos, d)
}

func (it *blockIter) finishPipeline() {
	if it.pipe == nil || !it.consuming {
		return
	}
	it.consumeFor(it.clock.Now() - it.consStart)
	it.clock.Set(it.pipe.End())
	it.consuming = false
}

// Err implements Iterator.
func (it *blockIter) Err() error { return it.err }

// identityOrder returns [0, 1, ..., n-1].
func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// noShuffle scans blocks and tuples in storage order — the fastest and
// statistically weakest strategy.
type noShuffle struct {
	src Source
	reg *obs.Registry
}

// Name implements Strategy.
func (*noShuffle) Name() Kind { return KindNoShuffle }

// StartEpoch implements Strategy.
func (s *noShuffle) StartEpoch(int) (Iterator, error) {
	return newBlockIter(s.src, identityOrder(s.src.NumBlocks()), s.reg), nil
}

// noShuffleNamed reuses the sequential scan under a different strategy name
// (Shuffle Once is a sequential scan over the pre-shuffled copy).
type noShuffleNamed struct {
	noShuffle
	kind Kind
}

// Name implements Strategy.
func (s *noShuffleNamed) Name() Kind { return s.kind }

// blockOnly shuffles the block order each epoch but keeps tuples within a
// block in storage order — the CorgiPile ablation of Section 7.3.2 that
// shows why the tuple-level shuffle matters.
type blockOnly struct {
	src Source
	rng *rand.Rand
	reg *obs.Registry
}

// Name implements Strategy.
func (*blockOnly) Name() Kind { return KindBlockOnly }

// StartEpoch implements Strategy.
func (s *blockOnly) StartEpoch(int) (Iterator, error) {
	return newBlockIter(s.src, s.rng.Perm(s.src.NumBlocks()), s.reg), nil
}

// epochShuffle performs a full shuffle before every epoch: it scans all
// blocks (sequential read), charges the external-sort materialization, and
// streams the tuples in uniformly random order.
type epochShuffle struct {
	src FullShuffler
	rng *rand.Rand
	reg *obs.Registry
}

// Name implements Strategy.
func (*epochShuffle) Name() Kind { return KindEpochShuffle }

// StartEpoch implements Strategy.
func (s *epochShuffle) StartEpoch(int) (Iterator, error) {
	var fillStart time.Duration
	clock := s.src.Clock()
	if clock != nil {
		fillStart = clock.Now()
	}
	all := make([]data.Tuple, 0, s.src.NumTuples())
	for b := 0; b < s.src.NumBlocks(); b++ {
		ts, err := s.src.ReadBlock(b)
		if err != nil {
			return nil, err
		}
		all = append(all, ts...)
	}
	s.src.ChargeFullShuffle()
	s.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	s.reg.Inc(obs.ShuffleRefills)
	s.reg.Add(obs.ShuffleBlocks, int64(s.src.NumBlocks()))
	if clock != nil {
		s.reg.AddDuration(obs.ShuffleFillNanos, clock.Now()-fillStart)
	}
	return &sliceIter{tuples: all}, nil
}

// sliceIter streams an in-memory tuple slice.
type sliceIter struct {
	tuples []data.Tuple
	pos    int
}

// Next implements Iterator.
func (it *sliceIter) Next() (*data.Tuple, bool) {
	if it.pos >= len(it.tuples) {
		return nil, false
	}
	t := &it.tuples[it.pos]
	it.pos++
	return t, true
}

// Err implements Iterator.
func (it *sliceIter) Err() error { return nil }
