package shuffle

import (
	"testing"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/obs"
	"corgipile/internal/storage"
)

// buildObsHDDTable builds a clustered table on a fresh HDD device carrying
// both an access trace and a metrics registry. The registry is attached
// after the build so its counters cover only the training-time I/O.
func buildObsHDDTable(t *testing.T) (*storage.Table, *iosim.Trace, *obs.Registry) {
	t.Helper()
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 5000, Features: 16, Order: data.OrderClustered, Seed: 33})
	clock := iosim.NewClock()
	dev := iosim.NewDevice(iosim.HDD, clock)
	trace := dev.WithTrace()
	tab, err := storage.Build(dev, ds, storage.Options{BlockSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New().WithClock(clock)
	dev.WithObs(reg)
	return tab, trace, reg
}

// regSeekFraction reads the seek fraction out of the registry counters —
// the metrics-pipeline twin of Trace.SeekFraction.
func regSeekFraction(reg *obs.Registry) float64 {
	ops := reg.Counter(obs.IOReadOps)
	if ops == 0 {
		return 0
	}
	return float64(reg.Counter(obs.IOSeeks)) / float64(ops)
}

// TestSeekFractionMetricsMatchTrace is the regression guard for the access
// patterns the paper's cost model rests on, expressed through both
// observability paths: a sequential No-Shuffle epoch must be (almost)
// seek-free, and a CorgiPile epoch must seek on (almost) every block —
// according to the device trace AND the registry counters.
func TestSeekFractionMetricsMatchTrace(t *testing.T) {
	tab, trace, reg := buildObsHDDTable(t)
	ns, err := New(KindNoShuffle, TableSource(tab), Options{Seed: 1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	epochCost(t, ns, tab.Device().Clock(), 0)
	if f := trace.SeekFraction(); f > 0.05 {
		t.Fatalf("no-shuffle trace seek fraction = %.2f, want ~0", f)
	}
	if f := regSeekFraction(reg); f > 0.05 {
		t.Fatalf("no-shuffle registry seek fraction = %.2f, want ~0", f)
	}

	tab2, trace2, reg2 := buildObsHDDTable(t)
	cp, err := New(KindCorgiPile, TableSource(tab2), Options{Seed: 1, Obs: reg2})
	if err != nil {
		t.Fatal(err)
	}
	epochCost(t, cp, tab2.Device().Clock(), 0)
	if f := trace2.SeekFraction(); f < 0.9 {
		t.Fatalf("corgipile trace seek fraction = %.2f, want ~1", f)
	}
	if f := regSeekFraction(reg2); f < 0.9 {
		t.Fatalf("corgipile registry seek fraction = %.2f, want ~1", f)
	}
	if reg2.Counter(obs.IOReadBytes) == 0 || reg2.Counter(obs.ShuffleRefills) == 0 {
		t.Fatal("registry should have counted read bytes and buffer refills")
	}
}

// TestDoubleBufferOverlapVisibleInMetrics checks the Section 6.3 claim
// through the metrics pipeline: with double buffering, the epoch's
// simulated duration is shorter than the serial sum of buffer-fill time
// and consume time (the overlap), yet no shorter than either component
// alone (no accounting can beat the critical path).
func TestDoubleBufferOverlapVisibleInMetrics(t *testing.T) {
	const perTuple = 3 * time.Microsecond
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 20000, Features: 32, Order: data.OrderClustered, Seed: 31})
	clock := iosim.NewClock()
	dev := iosim.NewDevice(iosim.HDD, clock)
	tab, err := storage.Build(dev, ds, storage.Options{BlockSize: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New().WithClock(clock)
	dev.WithObs(reg)

	st, err := New(KindCorgiPile, TableSource(tab), Options{Seed: 3, DoubleBuffer: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	epoch := epochCost(t, st, clock, perTuple)

	fill := time.Duration(reg.Counter(obs.ShuffleFillNanos))
	consume := time.Duration(reg.Counter(obs.ShuffleConsumeNanos))
	if fill == 0 || consume == 0 {
		t.Fatalf("expected nonzero fill (%v) and consume (%v) time", fill, consume)
	}
	if epoch >= fill+consume {
		t.Fatalf("pipelined epoch %v should be shorter than serial fill %v + consume %v",
			epoch, fill, consume)
	}
	longest := fill
	if consume > longest {
		longest = consume
	}
	if epoch < longest {
		t.Fatalf("epoch %v cannot be shorter than its longest component (fill %v, consume %v)",
			epoch, fill, consume)
	}
}
