package shuffle

import (
	"testing"

	"corgipile/internal/data"
)

// clusteredSource returns an in-memory clustered binary dataset split into
// blocks of perBlock tuples.
func clusteredSource(n, perBlock int) *MemSource {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: n, Features: 4, Order: data.OrderClustered, Seed: 21})
	return NewMemSource(ds, perBlock)
}

// drain collects an epoch's tuple IDs.
func drain(t *testing.T, it Iterator) []int64 {
	t.Helper()
	var ids []int64
	for {
		tp, ok := it.Next()
		if !ok {
			break
		}
		ids = append(ids, tp.ID)
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	return ids
}

// assertPermutation checks that ids is exactly a permutation of 0..n-1.
func assertPermutation(t *testing.T, ids []int64, n int) {
	t.Helper()
	if len(ids) != n {
		t.Fatalf("epoch emitted %d tuples, want %d", len(ids), n)
	}
	seen := make([]bool, n)
	for _, id := range ids {
		if id < 0 || id >= int64(n) {
			t.Fatalf("id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("id %d emitted twice", id)
		}
		seen[id] = true
	}
}

// Strategies that visit every tuple exactly once per epoch.
var exactlyOnceKinds = []Kind{
	KindNoShuffle, KindShuffleOnce, KindEpochShuffle,
	KindSlidingWindow, KindBlockOnly, KindCorgiPile,
}

func TestStrategiesEmitExactlyOncePerEpoch(t *testing.T) {
	const n = 500
	for _, kind := range exactlyOnceKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			src := clusteredSource(n, 25)
			st, err := New(kind, src, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			for epoch := 0; epoch < 3; epoch++ {
				it, err := st.StartEpoch(epoch)
				if err != nil {
					t.Fatal(err)
				}
				ids := drain(t, it)
				if kind == KindShuffleOnce || kind == KindEpochShuffle {
					// IDs were renumbered by the shuffled copy for Shuffle
					// Once; both still visit n distinct tuples.
					assertPermutation(t, ids, n)
				} else {
					assertPermutation(t, ids, n)
				}
			}
		})
	}
}

func TestMRSCoversAllTuplesAndLoops(t *testing.T) {
	const n = 400
	src := clusteredSource(n, 20)
	st, err := New(KindMRS, src, Options{Seed: 2, BufferFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 0: loop buffer empty, exactly one pass.
	it, _ := st.StartEpoch(0)
	ids := drain(t, it)
	assertPermutation(t, ids, n)

	// Epoch 1: loop buffer non-empty → some tuples repeat (data skew the
	// paper describes), but every tuple still appears at least once.
	it, _ = st.StartEpoch(1)
	ids = drain(t, it)
	if len(ids) <= n {
		t.Fatalf("epoch 1 emitted %d tuples, want > %d (loop multiplexing)", len(ids), n)
	}
	seen := make(map[int64]int)
	for _, id := range ids {
		seen[id]++
	}
	if len(seen) != n {
		t.Fatalf("epoch 1 covered %d distinct tuples, want %d", len(seen), n)
	}
	repeats := 0
	for _, c := range seen {
		if c > 1 {
			repeats++
		}
	}
	if repeats == 0 {
		t.Fatal("MRS loop thread emitted no repeated tuples")
	}
}

func TestNoShuffleKeepsOrder(t *testing.T) {
	src := clusteredSource(100, 10)
	st, _ := New(KindNoShuffle, src, Options{Seed: 3})
	it, _ := st.StartEpoch(0)
	ids := drain(t, it)
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("no-shuffle emitted id %d at position %d", id, i)
		}
	}
}

func TestBlockOnlyKeepsWithinBlockOrder(t *testing.T) {
	src := clusteredSource(100, 10)
	st, _ := New(KindBlockOnly, src, Options{Seed: 4})
	it, _ := st.StartEpoch(0)
	ids := drain(t, it)
	// Within each run of 10, ids must be consecutive ascending.
	shuffledBlocks := false
	for b := 0; b < 10; b++ {
		run := ids[b*10 : (b+1)*10]
		for i := 1; i < 10; i++ {
			if run[i] != run[i-1]+1 {
				t.Fatalf("block-only broke within-block order: %v", run)
			}
		}
		if run[0] != int64(b*10) {
			shuffledBlocks = true
		}
	}
	if !shuffledBlocks {
		t.Fatal("block-only left blocks in identity order (astronomically unlikely)")
	}
}

func TestCorgiPileShufflesWithinBuffer(t *testing.T) {
	src := clusteredSource(200, 10) // 20 blocks
	st, _ := New(KindCorgiPile, src, Options{Seed: 5, BufferFraction: 0.25})
	it, _ := st.StartEpoch(0)
	ids := drain(t, it)
	assertPermutation(t, ids, 200)
	// A buffer holds 5 blocks = 50 tuples; within the first 50 emissions the
	// ids must NOT be block-contiguous (tuple-level shuffle happened).
	contiguous := 0
	for i := 1; i < 50; i++ {
		if ids[i] == ids[i-1]+1 {
			contiguous++
		}
	}
	if contiguous > 25 {
		t.Fatalf("first buffer looks unshuffled: %d/49 contiguous pairs", contiguous)
	}
}

func TestCorgiPileEpochsDiffer(t *testing.T) {
	src := clusteredSource(200, 10)
	st, _ := New(KindCorgiPile, src, Options{Seed: 6})
	it0, _ := st.StartEpoch(0)
	it1, _ := st.StartEpoch(1)
	a, b := drain(t, it0), drain(t, it1)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two CorgiPile epochs produced identical orders")
	}
}

func TestStrategiesDeterministicAcrossRuns(t *testing.T) {
	for _, kind := range Kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			run := func() []int64 {
				src := clusteredSource(300, 20)
				st, err := New(kind, src, Options{Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				it, err := st.StartEpoch(0)
				if err != nil {
					t.Fatal(err)
				}
				return drain(t, it)
			}
			a, b := run(), run()
			if len(a) != len(b) {
				t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
				}
			}
		})
	}
}

func TestShuffleOnceActuallyShuffles(t *testing.T) {
	src := clusteredSource(300, 20)
	st, _ := New(KindShuffleOnce, src, Options{Seed: 8})
	it, _ := st.StartEpoch(0)
	// Shuffle Once renumbers IDs on the shuffled copy, so look at labels:
	// a clustered dataset has all -1 first; the shuffled copy must not.
	var labels []float64
	for {
		tp, ok := it.Next()
		if !ok {
			break
		}
		labels = append(labels, tp.Label)
	}
	firstHalfPos := 0
	for _, l := range labels[:150] {
		if l > 0 {
			firstHalfPos++
		}
	}
	if firstHalfPos < 30 {
		t.Fatalf("shuffle-once first half has only %d positives; not shuffled", firstHalfPos)
	}
}

func TestShuffleOnceEpochsIdentical(t *testing.T) {
	src := clusteredSource(200, 10)
	st, _ := New(KindShuffleOnce, src, Options{Seed: 9})
	a := drain(t, mustIter(t, st, 0))
	b := drain(t, mustIter(t, st, 1))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shuffle-once must reuse the same order every epoch")
		}
	}
}

func TestEpochShuffleEpochsDiffer(t *testing.T) {
	src := clusteredSource(200, 10)
	st, _ := New(KindEpochShuffle, src, Options{Seed: 10})
	a := drain(t, mustIter(t, st, 0))
	b := drain(t, mustIter(t, st, 1))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("epoch-shuffle must reshuffle every epoch")
	}
}

func mustIter(t *testing.T, st Strategy, epoch int) Iterator {
	t.Helper()
	it, err := st.StartEpoch(epoch)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func TestUnknownKindErrors(t *testing.T) {
	if _, err := New("quantum", clusteredSource(10, 2), Options{}); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

func TestStrategyNames(t *testing.T) {
	src := clusteredSource(50, 5)
	for _, kind := range Kinds {
		st, err := New(kind, src, Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if st.Name() != kind {
			t.Fatalf("Name() = %q, want %q", st.Name(), kind)
		}
	}
}

func TestMemSourceBlocks(t *testing.T) {
	src := clusteredSource(95, 10)
	if src.NumBlocks() != 10 {
		t.Fatalf("NumBlocks = %d, want 10", src.NumBlocks())
	}
	if src.BlockTuples(9) != 5 {
		t.Fatalf("last block tuples = %d, want 5", src.BlockTuples(9))
	}
	total := 0
	for i := 0; i < src.NumBlocks(); i++ {
		total += src.BlockTuples(i)
	}
	if total != 95 {
		t.Fatalf("block tuples sum = %d, want 95", total)
	}
}

func TestCorgiPileSampleOnlyEpoch(t *testing.T) {
	// Algorithm 1 mode: an epoch emits exactly one buffer's worth (n·b
	// tuples) sampled without replacement.
	src := clusteredSource(400, 20) // 20 blocks of 20
	st, err := New(KindCorgiPile, src, Options{Seed: 12, BufferFraction: 0.25, SampleOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	it, _ := st.StartEpoch(0)
	ids := drain(t, it)
	if len(ids) != 100 { // 5 blocks × 20 tuples
		t.Fatalf("sample-only epoch emitted %d tuples, want 100", len(ids))
	}
	seen := map[int64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("tuple %d sampled twice within an epoch", id)
		}
		seen[id] = true
	}
	// Across epochs the union grows: different blocks get sampled.
	it2, _ := st.StartEpoch(1)
	ids2 := drain(t, it2)
	union := map[int64]bool{}
	for _, id := range append(ids, ids2...) {
		union[id] = true
	}
	if len(union) <= 100 {
		t.Fatal("second epoch sampled the identical blocks (astronomically unlikely)")
	}
}

func TestCorgiPileSampleOnlyStillConverges(t *testing.T) {
	// Enough sample-only epochs cover the data and train the model — the
	// setting of Theorem 1 with T = S·n·b.
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 4000, Features: 10, Separation: 3, Order: data.OrderClustered, Seed: 13})
	src := NewMemSource(ds, 40)
	st, err := New(KindCorgiPile, src, Options{Seed: 14, BufferFraction: 0.2, SampleOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 11)
	lr := 0.02
	correctStream := 0
	total := 0
	for epoch := 0; epoch < 25; epoch++ {
		it, _ := st.StartEpoch(epoch)
		for {
			tp, ok := it.Next()
			if !ok {
				break
			}
			margin := tp.Dot(w[:10]) + w[10]
			if (margin >= 0) == (tp.Label >= 0) {
				correctStream++
			}
			total++
			if tp.Label*margin < 1 {
				for j, v := range tp.Dense {
					w[j] += lr * tp.Label * v
				}
				w[10] += lr * tp.Label
			}
		}
	}
	lateAcc := float64(correctStream) / float64(total)
	if lateAcc < 0.8 {
		t.Fatalf("sample-only training streaming accuracy %.3f < 0.8", lateAcc)
	}
}
