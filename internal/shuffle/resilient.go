package shuffle

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/obs"
	"corgipile/internal/storage"
)

// FailurePolicy decides what a resilient source does when a block read fails
// permanently (storage.ErrCorrupt after the retry budget is spent).
type FailurePolicy int

const (
	// FailFast aborts the epoch on the first permanent error — the default,
	// and the only behaviour the engine had before fault injection existed.
	FailFast FailurePolicy = iota
	// SkipCorrupt quarantines the bad block and keeps training on the
	// remaining data, recording the loss. Training aborts anyway when the
	// skipped-tuple fraction exceeds Resilience.MaxSkipFraction.
	SkipCorrupt
)

// String renders the policy in the form ParseFailurePolicy accepts.
func (p FailurePolicy) String() string {
	if p == SkipCorrupt {
		return "skip"
	}
	return "fail"
}

// ParseFailurePolicy parses "fail" or "skip" (the SQL on_corrupt values).
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	switch s {
	case "", "fail", "fail_fast":
		return FailFast, nil
	case "skip", "skip_corrupt":
		return SkipCorrupt, nil
	}
	return FailFast, fmt.Errorf("shuffle: unknown failure policy %q (want fail or skip)", s)
}

// ErrSkipBudget reports that SkipCorrupt quarantined more data than the
// configured cap allows; training past this point would silently fit a
// meaningfully different dataset.
var ErrSkipBudget = errors.New("shuffle: skipped-data budget exceeded")

// DefaultMaxSkipFraction is the quarantine cap when Resilience leaves
// MaxSkipFraction zero: 5% of tuples.
const DefaultMaxSkipFraction = 0.05

// Resilience bundles the failure-handling configuration a training run
// threads down to its block reads. The zero value is exactly today's
// behaviour: one read attempt, abort on any error.
type Resilience struct {
	// Retry bounds transient-error retries on every block read.
	Retry storage.RetryPolicy
	// OnCorrupt picks the degrade policy for permanent block corruption.
	OnCorrupt FailurePolicy
	// MaxSkipFraction caps the fraction of tuples SkipCorrupt may quarantine
	// before aborting (0 selects DefaultMaxSkipFraction).
	MaxSkipFraction float64
	// Ctx, when non-nil, cancels retry backoff between attempts: a canceled
	// training job stops mid-storm instead of draining the retry budget.
	Ctx context.Context
}

// Enabled reports whether the configuration changes any behaviour.
func (r Resilience) Enabled() bool {
	return r.Retry.Enabled() || r.OnCorrupt != FailFast
}

func (r Resilience) skipCap() float64 {
	if r.MaxSkipFraction <= 0 {
		return DefaultMaxSkipFraction
	}
	return r.MaxSkipFraction
}

// FaultSummary is the immutable fault accounting attached to a training
// result: what went wrong, what it cost, and what was lost.
type FaultSummary struct {
	// TransientErrors counts block-read attempts that failed transiently.
	TransientErrors int64
	// Retries counts the retry attempts taken (each after one backoff).
	Retries int64
	// BackoffSeconds is the simulated time spent backing off.
	BackoffSeconds float64
	// SkippedBlocks lists block indices quarantined by SkipCorrupt, sorted.
	SkippedBlocks []int
	// SkippedTuples counts tuples lost to quarantined blocks.
	SkippedTuples int
	// WorkerCrashes counts distributed workers that crashed and were
	// absorbed by redistribution (filled by internal/dist).
	WorkerCrashes int
}

// Degraded reports whether any data was lost to quarantine.
func (s FaultSummary) Degraded() bool { return s.SkippedTuples > 0 }

// String renders a one-line human-readable summary ("clean" when empty).
func (s FaultSummary) String() string {
	if s.TransientErrors == 0 && s.Retries == 0 && len(s.SkippedBlocks) == 0 && s.WorkerCrashes == 0 {
		return "clean"
	}
	out := fmt.Sprintf("transient=%d retries=%d backoff=%.3fs", s.TransientErrors, s.Retries, s.BackoffSeconds)
	if len(s.SkippedBlocks) > 0 {
		out += fmt.Sprintf(" skipped_blocks=%d skipped_tuples=%d", len(s.SkippedBlocks), s.SkippedTuples)
	}
	if s.WorkerCrashes > 0 {
		out += fmt.Sprintf(" worker_crashes=%d", s.WorkerCrashes)
	}
	return out
}

// FaultReport accumulates fault events across a training run. It is safe for
// concurrent use: pipelined refills and parallel workers report into one
// instance.
type FaultReport struct {
	mu          sync.Mutex
	transient   int64
	retries     int64
	backoff     time.Duration
	quarantined map[int]bool
	skippedTup  int
	crashes     int
}

// NewFaultReport returns an empty report.
func NewFaultReport() *FaultReport { return &FaultReport{} }

func (r *FaultReport) addTransient() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.transient++
	r.mu.Unlock()
}

func (r *FaultReport) addRetry(wait time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.retries++
	r.backoff += wait
	r.mu.Unlock()
}

// AddWorkerCrash records one absorbed distributed-worker crash.
func (r *FaultReport) AddWorkerCrash() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.crashes++
	r.mu.Unlock()
}

// quarantine marks block i (holding tuples tuples) as skipped, returning the
// total skipped-tuple count and whether the block was newly quarantined.
func (r *FaultReport) quarantine(i, tuples int) (total int, fresh bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.quarantined == nil {
		r.quarantined = make(map[int]bool)
	}
	if !r.quarantined[i] {
		r.quarantined[i] = true
		r.skippedTup += tuples
		fresh = true
	}
	return r.skippedTup, fresh
}

func (r *FaultReport) isQuarantined(i int) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.quarantined[i]
}

// Summary snapshots the report.
func (r *FaultReport) Summary() FaultSummary {
	if r == nil {
		return FaultSummary{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := FaultSummary{
		TransientErrors: r.transient,
		Retries:         r.retries,
		BackoffSeconds:  r.backoff.Seconds(),
		SkippedTuples:   r.skippedTup,
		WorkerCrashes:   r.crashes,
	}
	for i := range r.quarantined {
		s.SkippedBlocks = append(s.SkippedBlocks, i)
	}
	sort.Ints(s.SkippedBlocks)
	return s
}

// resilientSource wraps a Source with retry/backoff on transient errors and
// an optional quarantine-and-continue policy for permanent corruption.
// Quarantine persists across epochs: once a block is skipped it stays
// skipped, so every later epoch sees the same (degraded) dataset.
type resilientSource struct {
	src    Source
	res    Resilience
	reg    *obs.Registry
	report *FaultReport
}

// NewResilientSource wraps src with the given resilience configuration,
// reporting fault events to reg (under the obs.Storage* names) and into
// report. A nil report allocates a fresh one; the (possibly shared) report
// is returned alongside the wrapped source. When src is a FullShuffler the
// wrapper is too. A disabled configuration returns src unchanged.
func NewResilientSource(src Source, res Resilience, reg *obs.Registry, report *FaultReport) (Source, *FaultReport) {
	if report == nil {
		report = NewFaultReport()
	}
	if !res.Enabled() {
		return src, report
	}
	rs := &resilientSource{src: src, res: res, reg: reg, report: report}
	if fs, ok := src.(FullShuffler); ok {
		return &resilientFull{resilientSource: rs, full: fs}, report
	}
	return rs, report
}

func (r *resilientSource) NumBlocks() int        { return r.src.NumBlocks() }
func (r *resilientSource) NumTuples() int        { return r.src.NumTuples() }
func (r *resilientSource) BlockTuples(i int) int { return r.src.BlockTuples(i) }
func (r *resilientSource) Clock() *iosim.Clock   { return r.src.Clock() }

// ReadBlock reads block i through the retry policy. A quarantined block
// yields an empty tuple slice (every iterator tolerates empty blocks), so
// the stream simply flows past the lost data.
func (r *resilientSource) ReadBlock(i int) ([]data.Tuple, error) {
	if r.report.isQuarantined(i) {
		return nil, nil
	}
	var tuples []data.Tuple
	err := r.res.Retry.Do(r.res.Ctx, r.src.Clock(), func(wait time.Duration) {
		r.report.addRetry(wait)
		r.reg.Inc(obs.StorageRetries)
		r.reg.AddDuration(obs.StorageBackoffNanos, wait)
	}, func() error {
		var e error
		tuples, e = r.src.ReadBlock(i)
		if e != nil && storage.IsTransient(e) {
			r.report.addTransient()
		}
		return e
	})
	if err == nil {
		return tuples, nil
	}
	if r.res.OnCorrupt == SkipCorrupt && errors.Is(err, storage.ErrCorrupt) {
		return r.skip(i, err)
	}
	return nil, err
}

// skip quarantines block i, enforcing the skipped-tuple cap.
func (r *resilientSource) skip(i int, cause error) ([]data.Tuple, error) {
	tuples := r.src.BlockTuples(i)
	total, fresh := r.report.quarantine(i, tuples)
	if fresh {
		r.reg.Inc(obs.StorageSkippedBlocks)
		r.reg.Add(obs.StorageSkippedTuples, int64(tuples))
	}
	if frac := float64(total) / float64(max(r.src.NumTuples(), 1)); frac > r.res.skipCap() {
		return nil, fmt.Errorf("shuffle: %.1f%% of tuples quarantined (cap %.1f%%): %w (last: %w)",
			100*frac, 100*r.res.skipCap(), ErrSkipBudget, cause)
	}
	return nil, nil
}

// resilientFull extends resilientSource with FullShuffler passthrough, so
// Shuffle Once and Epoch Shuffle stay available behind the wrapper. The
// shuffled copy shares the same resilience configuration and fault report.
type resilientFull struct {
	*resilientSource
	full FullShuffler
}

func (r *resilientFull) ShuffledCopy(rng *rand.Rand) (Source, error) {
	shuf, err := r.full.ShuffledCopy(rng)
	if err != nil {
		return nil, err
	}
	// The copy inherits the shared report (and with it the quarantine set);
	// the original source is not read again once the copy exists, so the
	// block indices cannot collide in practice.
	wrapped, _ := NewResilientSource(shuf, r.res, r.reg, r.report)
	return wrapped, nil
}

func (r *resilientFull) ChargeFullShuffle() { r.full.ChargeFullShuffle() }
