package shuffle

import (
	"math/rand"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
)

// mrs implements Bismarck's Multiplexed Reservoir Sampling shuffle
// (Section 3.4). One thread scans the data sequentially, maintaining a
// reservoir sample in buffer B1; tuples *dropped* by the reservoir feed
// SGD. A second thread concurrently loops over the previously sampled
// tuples in buffer B2, multiplexing them into the same model.
//
// This implementation emulates the two threads deterministically: every
// MRSLoopEvery scan-emissions, one tuple from the loop buffer is
// interleaved into the stream. At the end of the scan, B2 is refilled from
// B1 for the next epoch, and the reservoir itself is drained (so every
// epoch still emits at least the full pass worth of tuples).
type mrs struct {
	src  Source
	opts Options
	rng  *rand.Rand
	b2   []data.Tuple // loop buffer carried across epochs
}

// Name implements Strategy.
func (*mrs) Name() Kind { return KindMRS }

// StartEpoch implements Strategy.
func (s *mrs) StartEpoch(int) (Iterator, error) {
	half := s.opts.bufferTuples(s.src.NumTuples()) / 2
	if half < 1 {
		half = 1
	}
	return &mrsIter{
		owner:     s,
		scan:      newBlockIter(s.src, identityOrder(s.src.NumBlocks()), s.opts.Obs),
		reservoir: make([]data.Tuple, 0, half),
		loopBuf:   s.b2,
		loopEvery: s.opts.MRSLoopEvery,
		rng:       s.rng,
		clock:     s.src.Clock(),
		copyC:     s.opts.PerTupleCopyCost,
	}, nil
}

type mrsIter struct {
	owner     *mrs
	scan      *blockIter
	reservoir []data.Tuple
	loopBuf   []data.Tuple
	loopEvery int
	loopPos   int
	sinceLoop int
	seen      int // tuples scanned so far (reservoir index)
	rng       *rand.Rand
	clock     *iosim.Clock
	copyC     time.Duration
	draining  bool
	out       data.Tuple
}

// Next implements Iterator.
func (it *mrsIter) Next() (*data.Tuple, bool) {
	for {
		if it.draining {
			n := len(it.reservoir)
			if n == 0 {
				return nil, false
			}
			k := it.rng.Intn(n)
			it.out = it.reservoir[k]
			it.reservoir[k] = it.reservoir[n-1]
			it.reservoir = it.reservoir[:n-1]
			return &it.out, true
		}

		// Multiplex: interleave a loop-buffer tuple every loopEvery
		// emissions, modelling the second thread.
		if len(it.loopBuf) > 0 && it.sinceLoop >= it.loopEvery {
			it.sinceLoop = 0
			it.out = it.loopBuf[it.loopPos%len(it.loopBuf)]
			it.loopPos++
			return &it.out, true
		}

		t, ok := it.scan.Next()
		if !ok {
			// Scan done: hand the reservoir to the next epoch's loop buffer
			// and drain it for this epoch.
			it.owner.b2 = append(it.owner.b2[:0], it.reservoir...)
			it.draining = true
			continue
		}
		it.seen++
		it.sinceLoop++

		if len(it.reservoir) < cap(it.reservoir) {
			// Reservoir filling: the tuple is sampled, not dropped; copy it
			// and keep scanning.
			it.chargeCopy()
			it.reservoir = append(it.reservoir, *t)
			continue
		}
		// Standard reservoir sampling over the scan so far.
		if j := it.rng.Intn(it.seen); j < cap(it.reservoir) {
			// Selected: it replaces a reservoir slot; the evicted tuple is
			// dropped to SGD.
			it.chargeCopy()
			it.out = it.reservoir[j]
			it.reservoir[j] = *t
			return &it.out, true
		}
		// Not selected: the scanned tuple itself is dropped to SGD.
		it.out = *t
		return &it.out, true
	}
}

// Err implements Iterator.
func (it *mrsIter) Err() error { return it.scan.Err() }

func (it *mrsIter) chargeCopy() {
	if it.clock != nil && it.copyC > 0 {
		it.clock.Advance(it.copyC)
	}
}
