package shuffle

import (
	"math/rand"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
)

// slidingWindow implements TensorFlow's sliding-window shuffle
// (Section 3.3): a window of buffered tuples from which one uniformly
// random element is emitted and replaced by the next scanned tuple. Early
// tuples remain overwhelmingly likely to be emitted before late ones, which
// is exactly the pathology Figure 3(b) shows.
type slidingWindow struct {
	src  Source
	opts Options
	rng  *rand.Rand
}

// Name implements Strategy.
func (*slidingWindow) Name() Kind { return KindSlidingWindow }

// StartEpoch implements Strategy.
func (s *slidingWindow) StartEpoch(int) (Iterator, error) {
	return &windowIter{
		scan:   newBlockIter(s.src, identityOrder(s.src.NumBlocks()), s.opts.Obs),
		window: make([]data.Tuple, 0, s.opts.bufferTuples(s.src.NumTuples())),
		rng:    s.rng,
		clock:  s.src.Clock(),
		copyC:  s.opts.PerTupleCopyCost,
	}, nil
}

type windowIter struct {
	scan    *blockIter
	window  []data.Tuple
	rng     *rand.Rand
	clock   *iosim.Clock
	copyC   time.Duration
	drained bool
	out     data.Tuple
}

// Next implements Iterator.
func (it *windowIter) Next() (*data.Tuple, bool) {
	for {
		if it.drained {
			// Drain phase: emit the window's remaining tuples in random
			// order by swap-removal.
			n := len(it.window)
			if n == 0 {
				return nil, false
			}
			k := it.rng.Intn(n)
			it.out = it.window[k]
			it.window[k] = it.window[n-1]
			it.window = it.window[:n-1]
			return &it.out, true
		}
		t, ok := it.scan.Next()
		if !ok {
			it.drained = true
			continue
		}
		it.chargeCopy()
		if len(it.window) < cap(it.window) {
			it.window = append(it.window, *t)
			continue
		}
		k := it.rng.Intn(len(it.window))
		it.out = it.window[k]
		it.window[k] = *t
		return &it.out, true
	}
}

// Err implements Iterator.
func (it *windowIter) Err() error { return it.scan.Err() }

func (it *windowIter) chargeCopy() {
	if it.clock != nil && it.copyC > 0 {
		it.clock.Advance(it.copyC)
	}
}
