package shuffle

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
)

// flakySource wraps a Source and fails ReadBlock on a chosen block id —
// the failure-injection harness for the strategies' error paths.
type flakySource struct {
	Source
	failBlock int
	err       error
}

var errInjected = errors.New("injected block-read failure")

func newFlaky(src Source, failBlock int) *flakySource {
	return &flakySource{Source: src, failBlock: failBlock, err: errInjected}
}

func (f *flakySource) ReadBlock(i int) ([]data.Tuple, error) {
	if i == f.failBlock {
		return nil, f.err
	}
	return f.Source.ReadBlock(i)
}

// ShuffledCopy and ChargeFullShuffle make flakySource a FullShuffler so
// that Epoch Shuffle's error path is reachable.
func (f *flakySource) ShuffledCopy(*rand.Rand) (Source, error) { return nil, f.err }
func (f *flakySource) ChargeFullShuffle()                      {}

func TestStrategiesSurfaceReadErrors(t *testing.T) {
	// Every strategy must stop and report an injected block-read failure
	// via Err(), never panic or silently truncate without error.
	kinds := []Kind{KindNoShuffle, KindBlockOnly, KindSlidingWindow, KindMRS, KindCorgiPile}
	for _, kind := range kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			src := newFlaky(clusteredSource(200, 20), 5)
			st, err := New(kind, src, Options{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			it, err := st.StartEpoch(0)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for {
				_, ok := it.Next()
				if !ok {
					break
				}
				count++
			}
			if !errors.Is(it.Err(), errInjected) {
				t.Fatalf("Err() = %v, want injected error (emitted %d tuples)", it.Err(), count)
			}
			if count >= 200 {
				t.Fatal("iterator claimed full coverage despite failure")
			}
		})
	}
}

func TestEpochShuffleSurfacesReadErrorAtStart(t *testing.T) {
	src := newFlaky(clusteredSource(200, 20), 5)
	st, err := New(KindEpochShuffle, src, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.StartEpoch(0); !errors.Is(err, errInjected) {
		t.Fatalf("StartEpoch error = %v, want injected", err)
	}
}

func TestFailureDoesNotCorruptClock(t *testing.T) {
	// A failing epoch must leave the simulated clock at a sane (non-zero,
	// finite) time: pipelined iterators must close their overlap windows.
	clock := iosim.NewClock()
	base := clusteredSource(200, 20).WithClock(clock, 1e6) // 1ms per block
	src := newFlaky(base, 5)
	st, _ := New(KindCorgiPile, src, Options{Seed: 4, DoubleBuffer: true})
	it, _ := st.StartEpoch(0)
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if it.Err() == nil {
		t.Fatal("expected error")
	}
	if clock.Now() <= 0 {
		t.Fatalf("clock = %v after failure", clock.Now())
	}
}

// Property: for random block sizes and buffer fractions, CorgiPile's epoch
// is always an exact permutation of the dataset.
func TestCorgiPilePermutationProperty(t *testing.T) {
	f := func(perBlockRaw, bufRaw uint8, seed int64) bool {
		perBlock := int(perBlockRaw)%50 + 1
		bufferFrac := (float64(bufRaw)/255)*0.5 + 0.004
		const n = 300
		src := clusteredSource(n, perBlock)
		st, err := New(KindCorgiPile, src, Options{Seed: seed, BufferFraction: bufferFrac})
		if err != nil {
			return false
		}
		it, err := st.StartEpoch(0)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		count := 0
		for {
			tp, ok := it.Next()
			if !ok {
				break
			}
			if tp.ID < 0 || tp.ID >= n || seen[tp.ID] {
				return false
			}
			seen[tp.ID] = true
			count++
		}
		return count == n && it.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: sliding-window emits a permutation for any window fraction.
func TestSlidingWindowPermutationProperty(t *testing.T) {
	f := func(bufRaw uint8, seed int64) bool {
		bufferFrac := (float64(bufRaw)/255)*0.9 + 0.004
		const n = 250
		src := clusteredSource(n, 10)
		st, err := New(KindSlidingWindow, src, Options{Seed: seed, BufferFraction: bufferFrac})
		if err != nil {
			return false
		}
		it, _ := st.StartEpoch(0)
		seen := make([]bool, n)
		count := 0
		for {
			tp, ok := it.Next()
			if !ok {
				break
			}
			if seen[tp.ID] {
				return false
			}
			seen[tp.ID] = true
			count++
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: MRS covers every tuple at least once each epoch for any buffer
// fraction and loop cadence.
func TestMRSCoverageProperty(t *testing.T) {
	f := func(bufRaw, loopRaw uint8, seed int64) bool {
		bufferFrac := (float64(bufRaw)/255)*0.4 + 0.01
		loopEvery := int(loopRaw)%5 + 1
		const n = 200
		src := clusteredSource(n, 10)
		st, err := New(KindMRS, src, Options{
			Seed: seed, BufferFraction: bufferFrac, MRSLoopEvery: loopEvery})
		if err != nil {
			return false
		}
		for epoch := 0; epoch < 2; epoch++ {
			it, err := st.StartEpoch(epoch)
			if err != nil {
				return false
			}
			seen := make(map[int64]bool)
			for {
				tp, ok := it.Next()
				if !ok {
					break
				}
				seen[tp.ID] = true
			}
			if len(seen) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
