package shuffle

import (
	"math/rand"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/obs"
)

// corgiPile implements the paper's two-level hierarchical shuffle
// (Algorithm 1, operationalized as in the PostgreSQL/PyTorch
// integrations): each epoch the block order is shuffled (block-level
// shuffle over all N blocks), then blocks are pulled n at a time into an
// in-memory buffer whose tuples are shuffled before being emitted
// (tuple-level shuffle). Every tuple is visited exactly once per epoch.
//
// With DoubleBuffer set, buffer refills overlap with SGD consumption: fill
// and consume durations are measured on the shared clock and recombined
// through an iosim.Pipeline, reproducing the Section 6.3 optimization.
type corgiPile struct {
	src  Source
	opts Options
	rng  *rand.Rand
}

// Name implements Strategy.
func (*corgiPile) Name() Kind { return KindCorgiPile }

// StartEpoch implements Strategy.
func (s *corgiPile) StartEpoch(int) (Iterator, error) {
	// Buffer capacity in blocks (the paper's n), from the tuple budget.
	total := s.src.NumTuples()
	blocks := s.src.NumBlocks()
	avgPerBlock := (total + blocks - 1) / blocks
	if avgPerBlock < 1 {
		avgPerBlock = 1
	}
	n := s.opts.bufferTuples(total) / avgPerBlock
	if n < 1 {
		n = 1
	}
	perm := s.rng.Perm(blocks)
	if s.opts.SampleOnly && n < len(perm) {
		// Algorithm 1: one buffer of n sampled blocks per epoch.
		perm = perm[:n]
	}
	it := &corgiIter{
		src:    s.src,
		perm:   perm,
		nBuf:   n,
		bufCap: s.opts.bufferTuples(total),
		rng:    s.rng,
		clock:  s.src.Clock(),
		copyC:  s.opts.PerTupleCopyCost,
		double: s.opts.DoubleBuffer,
		reg:    s.opts.Obs,
	}
	if it.double && it.clock != nil {
		it.pipe = iosim.NewPipeline(2, it.clock.Now())
	}
	return it, nil
}

type corgiIter struct {
	src    Source
	perm   []int
	next   int // next position in perm
	nBuf   int // blocks per buffer (the paper's n)
	bufCap int // tuple budget of one buffer, for the occupancy gauge
	buf    []data.Tuple
	pos    int
	rng    *rand.Rand
	clock  *iosim.Clock
	reg    *obs.Registry
	copyC  time.Duration
	err    error

	double    bool
	pipe      *iosim.Pipeline
	consStart time.Duration
	consuming bool
}

// Next implements Iterator.
func (it *corgiIter) Next() (*data.Tuple, bool) {
	for it.pos >= len(it.buf) {
		if it.err != nil || it.next >= len(it.perm) {
			it.finishPipeline()
			return nil, false
		}
		it.refill()
		if it.err != nil {
			it.finishPipeline()
			return nil, false
		}
	}
	t := &it.buf[it.pos]
	it.pos++
	return t, true
}

// Err implements Iterator.
func (it *corgiIter) Err() error { return it.err }

// refill loads the next n blocks into the buffer and shuffles its tuples.
func (it *corgiIter) refill() {
	var fillStartNow time.Duration
	if it.pipe != nil {
		// Close out the consume phase of the previous buffer.
		if it.consuming {
			it.consumeFor(it.clock.Now() - it.consStart)
		}
	}
	if it.clock != nil {
		fillStartNow = it.clock.Now()
	}
	sp := it.reg.Span(obs.SpanRefill)

	it.buf = it.buf[:0]
	it.pos = 0
	blocks := 0
	for count := 0; count < it.nBuf && it.next < len(it.perm); count++ {
		ts, err := it.src.ReadBlock(it.perm[it.next])
		if err != nil {
			it.err = err
			sp.End()
			return
		}
		it.next++
		blocks++
		it.buf = append(it.buf, ts...)
	}
	// Tuple-level shuffle plus the per-tuple buffer-copy cost.
	if it.clock != nil && it.copyC > 0 {
		it.clock.Advance(time.Duration(len(it.buf)) * it.copyC)
	}
	it.rng.Shuffle(len(it.buf), func(i, j int) {
		it.buf[i], it.buf[j] = it.buf[j], it.buf[i]
	})

	sp.End()
	it.reg.Inc(obs.ShuffleRefills)
	it.reg.Add(obs.ShuffleBlocks, int64(blocks))
	// Live-only gauges: recorded when a telemetry server enabled live mode,
	// so passive traces are unchanged.
	it.reg.SetLiveGauge(obs.ShuffleBufferTuples, float64(len(it.buf)))
	if it.bufCap > 0 {
		it.reg.SetLiveGauge(obs.ShuffleBufferOccupancy,
			float64(len(it.buf))/float64(it.bufCap))
	}
	if it.clock != nil {
		it.reg.AddDuration(obs.ShuffleFillNanos, it.clock.Now()-fillStartNow)
	}
	if it.pipe != nil {
		fillCost := it.clock.Now() - fillStartNow
		consStart := it.pipe.Fill(fillCost)
		it.clock.Set(consStart)
		it.consStart = consStart
		it.consuming = true
	}
}

// consumeFor closes one consume interval on the pipeline and reports it.
func (it *corgiIter) consumeFor(d time.Duration) {
	it.pipe.Consume(d)
	it.reg.AddDuration(obs.ShuffleConsumeNanos, d)
}

// finishPipeline closes the last consume phase and sets the clock to the
// pipelined completion time.
func (it *corgiIter) finishPipeline() {
	if it.pipe == nil || !it.consuming {
		return
	}
	it.consumeFor(it.clock.Now() - it.consStart)
	it.clock.Set(it.pipe.End())
	it.consuming = false
}
