package shuffle

import (
	"fmt"
	"math/rand"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/obs"
)

// Kind names a shuffling strategy.
type Kind string

// The strategies compared in the paper (Section 3 plus CorgiPile).
const (
	KindNoShuffle     Kind = "no_shuffle"
	KindShuffleOnce   Kind = "shuffle_once"
	KindEpochShuffle  Kind = "epoch_shuffle"
	KindSlidingWindow Kind = "sliding_window"
	KindMRS           Kind = "mrs"
	KindBlockOnly     Kind = "block_only"
	KindCorgiPile     Kind = "corgipile"
)

// Kinds lists every strategy in presentation order.
var Kinds = []Kind{
	KindNoShuffle, KindShuffleOnce, KindEpochShuffle,
	KindSlidingWindow, KindMRS, KindBlockOnly, KindCorgiPile,
}

// Options configures a strategy.
type Options struct {
	// BufferFraction is the in-memory buffer size as a fraction of the
	// dataset (the paper's default is 0.10). It sizes CorgiPile's block
	// buffer, the sliding window, and the MRS reservoir alike, so the
	// strategies compete with equal memory.
	BufferFraction float64
	// Seed seeds the strategy's random choices.
	Seed int64
	// DoubleBuffer enables CorgiPile's double-buffering optimization
	// (Section 6.3), overlapping block I/O with SGD compute.
	DoubleBuffer bool
	// PerTupleCopyCost is the CPU cost of copying one tuple into a shuffle
	// buffer; it models the 11.7% overhead CorgiPile pays over No Shuffle.
	// Zero selects the default of 60ns.
	PerTupleCopyCost time.Duration
	// MRSLoopEvery controls how often the MRS loop "thread" injects a
	// buffered tuple between scanned tuples (default 2, i.e. one buffered
	// tuple per two scanned).
	MRSLoopEvery int
	// SampleOnly makes CorgiPile follow Algorithm 1 literally: each epoch
	// trains on ONE buffer of n blocks sampled without replacement (n·b
	// tuples) instead of streaming every block through the buffer. This is
	// the regime the convergence theorems analyze (one epoch = n·b
	// updates); the systems integrations use the full-stream variant.
	SampleOnly bool
	// Obs, when non-nil, receives refill counts and buffer fill/consume
	// times under the obs.Shuffle* metric names, making strategy I/O
	// behaviour visible in the cross-layer epoch breakdown.
	Obs *obs.Registry
	// Resilience, when enabled, wraps the source with retry/backoff and the
	// configured corrupt-block degrade policy before the strategy sees it.
	Resilience Resilience
	// FaultReport, when non-nil, receives the resilient source's fault
	// accounting so the caller can surface it in results. Ignored unless
	// Resilience is enabled.
	FaultReport *FaultReport
}

func (o Options) withDefaults() Options {
	if o.BufferFraction <= 0 {
		o.BufferFraction = 0.10
	}
	if o.PerTupleCopyCost == 0 {
		o.PerTupleCopyCost = 60 * time.Nanosecond
	}
	if o.MRSLoopEvery <= 0 {
		o.MRSLoopEvery = 2
	}
	return o
}

// bufferTuples converts the buffer fraction into a tuple count, at least 1.
func (o Options) bufferTuples(total int) int {
	n := int(o.BufferFraction * float64(total))
	if n < 1 {
		n = 1
	}
	return n
}

// Iterator streams one epoch's tuples. After Next returns ok=false, Err
// reports whether the epoch ended normally or on a storage error.
type Iterator interface {
	Next() (t *data.Tuple, ok bool)
	Err() error
}

// Strategy produces per-epoch tuple streams over a Source.
type Strategy interface {
	// Name returns the strategy kind.
	Name() Kind
	// StartEpoch begins epoch s (0-based) and returns its tuple stream.
	StartEpoch(s int) (Iterator, error)
}

// New constructs the named strategy over src. Shuffle Once pays its full
// preprocessing cost inside New, so construction time is part of the
// end-to-end measurements exactly as in Figure 11.
func New(kind Kind, src Source, opts Options) (Strategy, error) {
	opts = opts.withDefaults()
	if opts.Resilience.Enabled() {
		src, _ = NewResilientSource(src, opts.Resilience, opts.Obs, opts.FaultReport)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	switch kind {
	case KindNoShuffle:
		return &noShuffle{src: src, reg: opts.Obs}, nil
	case KindBlockOnly:
		return &blockOnly{src: src, rng: rng, reg: opts.Obs}, nil
	case KindShuffleOnce:
		fs, ok := src.(FullShuffler)
		if !ok {
			return nil, fmt.Errorf("shuffle: %s requires a FullShuffler source", kind)
		}
		shuf, err := fs.ShuffledCopy(rng)
		if err != nil {
			return nil, fmt.Errorf("shuffle: shuffle-once preprocessing: %w", err)
		}
		return &noShuffleNamed{noShuffle{src: shuf, reg: opts.Obs}, KindShuffleOnce}, nil
	case KindEpochShuffle:
		fs, ok := src.(FullShuffler)
		if !ok {
			return nil, fmt.Errorf("shuffle: %s requires a FullShuffler source", kind)
		}
		return &epochShuffle{src: fs, rng: rng, reg: opts.Obs}, nil
	case KindSlidingWindow:
		return &slidingWindow{src: src, opts: opts, rng: rng}, nil
	case KindMRS:
		return &mrs{src: src, opts: opts, rng: rng}, nil
	case KindCorgiPile:
		return &corgiPile{src: src, opts: opts, rng: rng}, nil
	}
	return nil, fmt.Errorf("shuffle: unknown strategy %q", kind)
}
