// Package shuffle implements the data-shuffling strategies the paper
// studies: No Shuffle, Shuffle Once, Epoch Shuffle, Sliding-Window Shuffle
// (TensorFlow), Multiplexed Reservoir Sampling (Bismarck), Block-Only
// Shuffle, and CorgiPile itself. Each strategy turns block-granular storage
// access into a per-epoch stream of training tuples; the I/O it performs is
// charged to the source's simulated device, so strategies are compared on
// both statistical and hardware efficiency.
package shuffle

import (
	"fmt"
	"math/rand"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/storage"
)

// Source is block-granular, storage-order access to a dataset — the
// interface between shuffling strategies and the storage engine.
type Source interface {
	// NumBlocks returns the number of blocks (the paper's N).
	NumBlocks() int
	// NumTuples returns the total number of tuples (the paper's m).
	NumTuples() int
	// BlockTuples returns the tuple count of block i.
	BlockTuples(i int) int
	// ReadBlock reads block i, charging any simulated I/O.
	ReadBlock(i int) ([]data.Tuple, error)
	// Clock returns the simulated clock I/O is charged to, or nil for
	// purely in-memory sources.
	Clock() *iosim.Clock
}

// DeviceSource is a Source backed by a simulated storage device. The
// executor's profiler uses it to attribute device traffic (bytes read,
// cache hits, injected faults) to the plan's access-path leaf.
type DeviceSource interface {
	Source
	// Device returns the backing simulated device.
	Device() *iosim.Device
}

// FullShuffler is a Source that can materialize a fully shuffled copy of
// itself, charging whatever that costs (Shuffle Once's preprocessing).
type FullShuffler interface {
	Source
	// ShuffledCopy returns a new Source holding the same tuples in a
	// uniformly random order, charging the shuffle's I/O cost.
	ShuffledCopy(rng *rand.Rand) (Source, error)
	// ChargeFullShuffle charges the I/O cost of one full shuffle pass
	// without materializing a copy (used by Epoch Shuffle, which re-sorts
	// in place every epoch).
	ChargeFullShuffle()
}

// tableSource adapts a storage.Table to Source.
type tableSource struct {
	t *storage.Table
}

// TableSource wraps a storage table as a strategy Source.
func TableSource(t *storage.Table) FullShuffler { return tableSource{t} }

// Device implements DeviceSource.
func (s tableSource) Device() *iosim.Device { return s.t.Device() }

func (s tableSource) NumBlocks() int        { return s.t.NumBlocks() }
func (s tableSource) NumTuples() int        { return s.t.NumTuples() }
func (s tableSource) BlockTuples(i int) int { return s.t.BlockTuples(i) }
func (s tableSource) Clock() *iosim.Clock   { return s.t.Device().Clock() }
func (s tableSource) ReadBlock(i int) ([]data.Tuple, error) {
	return s.t.ReadBlock(i)
}

func (s tableSource) ShuffledCopy(rng *rand.Rand) (Source, error) {
	shuf, err := storage.ShuffleOnceCopy(s.t, rng)
	if err != nil {
		return nil, err
	}
	return tableSource{shuf}, nil
}

func (s tableSource) ChargeFullShuffle() {
	// External-sort materialization: run-generation write, merge read,
	// result write (the read of the input is charged by the caller's scan).
	size := s.t.SizeBytes()
	dev := s.t.Device()
	dev.WriteAt(size, size)
	dev.ReadAt(size, size)
	dev.WriteAt(2*size, size)
}

// sliceSource restricts a Source to a fixed block range.
type sliceSource struct {
	src    Source
	lo     int
	tuples int
	blocks int
}

// SliceSource restricts src to the block range [lo, hi), fixed at
// construction time. Incremental training uses it to fold only the blocks
// appended since a model's last run into the CorgiPile block pool: the
// range is frozen when the plan is prepared, so blocks appended while the
// plan runs never leak into it and the epoch stays bit-deterministic.
func SliceSource(src Source, lo, hi int) Source {
	if lo < 0 {
		lo = 0
	}
	if hi > src.NumBlocks() {
		hi = src.NumBlocks()
	}
	if hi < lo {
		hi = lo
	}
	tuples := 0
	for i := lo; i < hi; i++ {
		tuples += src.BlockTuples(i)
	}
	return &sliceSource{src: src, lo: lo, tuples: tuples, blocks: hi - lo}
}

// NumBlocks implements Source.
func (s *sliceSource) NumBlocks() int { return s.blocks }

// NumTuples implements Source.
func (s *sliceSource) NumTuples() int { return s.tuples }

// BlockTuples implements Source.
func (s *sliceSource) BlockTuples(i int) int { return s.src.BlockTuples(s.lo + i) }

// Clock implements Source.
func (s *sliceSource) Clock() *iosim.Clock { return s.src.Clock() }

// ReadBlock implements Source.
func (s *sliceSource) ReadBlock(i int) ([]data.Tuple, error) {
	if i < 0 || i >= s.blocks {
		return nil, fmt.Errorf("shuffle: slice block %d out of range [0,%d)", i, s.blocks)
	}
	return s.src.ReadBlock(s.lo + i)
}

// Device implements DeviceSource when the underlying source does.
func (s *sliceSource) Device() *iosim.Device {
	if ds, ok := s.src.(DeviceSource); ok {
		return ds.Device()
	}
	return nil
}

// MemSource is an in-memory Source over a dataset partitioned into blocks
// of a fixed tuple count. It charges no I/O and is used by unit tests and
// by the out-of-DB (PyTorch-style, data already in memory) comparisons.
type MemSource struct {
	ds        *data.Dataset
	perBlock  int
	clock     *iosim.Clock
	readDelay time.Duration // optional fixed per-block latency
}

// NewMemSource partitions ds into blocks of perBlock tuples.
func NewMemSource(ds *data.Dataset, perBlock int) *MemSource {
	if perBlock <= 0 {
		perBlock = 1
	}
	return &MemSource{ds: ds, perBlock: perBlock}
}

// WithClock attaches a clock and per-block read delay to the source and
// returns it, for tests that need timing without a storage engine.
func (s *MemSource) WithClock(c *iosim.Clock, perBlockDelay time.Duration) *MemSource {
	s.clock = c
	s.readDelay = perBlockDelay
	return s
}

// NumBlocks implements Source.
func (s *MemSource) NumBlocks() int {
	return (s.ds.Len() + s.perBlock - 1) / s.perBlock
}

// NumTuples implements Source.
func (s *MemSource) NumTuples() int { return s.ds.Len() }

// BlockTuples implements Source.
func (s *MemSource) BlockTuples(i int) int {
	lo := i * s.perBlock
	hi := lo + s.perBlock
	if hi > s.ds.Len() {
		hi = s.ds.Len()
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// Clock implements Source.
func (s *MemSource) Clock() *iosim.Clock { return s.clock }

// ReadBlock implements Source.
func (s *MemSource) ReadBlock(i int) ([]data.Tuple, error) {
	lo := i * s.perBlock
	hi := lo + s.perBlock
	if hi > s.ds.Len() {
		hi = s.ds.Len()
	}
	if s.clock != nil && s.readDelay > 0 {
		s.clock.Advance(s.readDelay)
	}
	out := make([]data.Tuple, hi-lo)
	copy(out, s.ds.Tuples[lo:hi])
	return out, nil
}

// ShuffledCopy implements FullShuffler (free of I/O cost for memory
// sources).
func (s *MemSource) ShuffledCopy(rng *rand.Rand) (Source, error) {
	c := s.ds.Clone()
	c.Shuffle(rng)
	return (&MemSource{ds: c, perBlock: s.perBlock}).WithClock(s.clock, s.readDelay), nil
}

// ChargeFullShuffle implements FullShuffler; in-memory shuffles are free.
func (s *MemSource) ChargeFullShuffle() {}
