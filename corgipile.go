// Package corgipile is a from-scratch Go implementation of CorgiPile
// (SIGMOD 2022): stochastic gradient descent over block-addressable
// secondary storage without a full data shuffle.
//
// CorgiPile replaces the expensive full shuffle that SGD normally needs
// with a two-level hierarchical shuffle: each epoch it (1) shuffles the
// order of storage *blocks*, (2) pulls a buffer's worth of blocks into
// memory, and (3) shuffles the buffered *tuples* before feeding them to
// SGD. Random access at block granularity costs nearly the same as a
// sequential scan, while the two-level shuffle delivers convergence
// comparable to a fully shuffled pass.
//
// The package exposes three levels of API:
//
//   - Dataset-level: CorgiPileDataset streams shuffled tuples from any
//     in-memory dataset, the analogue of the paper's PyTorch
//     CorgiPileDataSet (see also internal/dist for the multi-worker mode).
//   - Trainer-level: Train runs a model/optimizer/strategy combination and
//     returns the convergence trace with simulated wall-clock times.
//   - SQL-level: NewSession opens an in-DB ML session supporting
//     CREATE TABLE ... / SELECT * FROM t TRAIN BY svm ... / PREDICT BY.
//
// All randomness is seeded and all performance numbers come from a
// deterministic storage simulation, so results reproduce exactly.
package corgipile

import (
	"io"

	"corgipile/internal/core"
	"corgipile/internal/data"
	"corgipile/internal/db"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/obs"
	"corgipile/internal/serve"
	"corgipile/internal/shuffle"
	"corgipile/internal/storage"
)

// Re-exported core types. These aliases are the library's public surface;
// the internal packages carry the implementations.
type (
	// Tuple is one training example.
	Tuple = data.Tuple
	// Dataset is an in-memory tuple collection with metadata.
	Dataset = data.Dataset
	// Order is the physical tuple order (clustered / shuffled / by
	// feature).
	Order = data.Order
	// Model is a trainable per-example loss.
	Model = ml.Model
	// Optimizer applies gradient updates.
	Optimizer = ml.Optimizer
	// Strategy streams per-epoch tuple orders.
	Strategy = shuffle.Strategy
	// StrategyKind names a shuffling strategy.
	StrategyKind = shuffle.Kind
	// Clock is the simulated clock.
	Clock = iosim.Clock
	// Device is a simulated storage device.
	Device = iosim.Device
	// Table is an on-device heap table.
	Table = storage.Table
	// Result is a training run's convergence trace.
	Result = core.Result
	// EpochPoint is one epoch of a convergence trace.
	EpochPoint = core.EpochPoint
	// Session is an in-DB ML session.
	Session = db.Session
	// Metrics is the cross-layer observability registry: counters, gauges,
	// duration histograms, spans, and exporters. Attach one via
	// TrainConfig.Metrics (or Session.WithMetrics) to get per-epoch time
	// breakdowns.
	Metrics = obs.Registry
	// EpochMetrics is one epoch's cross-layer time breakdown.
	EpochMetrics = obs.EpochMetrics
	// FaultPlan is a deterministic storage fault-injection plan: seeded
	// transient read errors, latency-spike stragglers, and corrupt blocks.
	// Attach one via TrainConfig.Faults.
	FaultPlan = iosim.FaultPlan
	// FaultSummary records how a run coped with injected faults (retries,
	// backoff time, quarantined blocks); see Result.Faults.
	FaultSummary = shuffle.FaultSummary
	// RunFeed publishes live per-epoch RunStatus updates to subscribers;
	// attach one via TrainConfig.Feed and serve it with ServeTelemetry.
	RunFeed = obs.RunFeed
	// RunStatus is one live status update of a training run.
	RunStatus = obs.RunStatus
	// TelemetryServer is the HTTP server behind ServeTelemetry: /metrics in
	// Prometheus text format, /run as JSON or SSE, and /debug/pprof/.
	TelemetryServer = obs.Server
	// DiagConfig enables and tunes the convergence diagnostics; see
	// TrainConfig.Diag.
	DiagConfig = core.DiagConfig
	// EpochDiag is one epoch's convergence diagnostics row.
	EpochDiag = core.EpochDiag
	// PlanStats is an annotated physical-plan tree: one node per executor
	// operator, carrying rows, self/total time on both clocks, and I/O
	// statistics. Result.Plan holds one for TrainConfig.Explain runs; render
	// it with Text(true) or JSON().
	PlanStats = obs.PlanStats
	// EventLog is the structured event log: a bounded in-memory ring of
	// typed events (statement lifecycle, job transitions, checkpoints,
	// replication) plus per-trace spans. Attach one via TrainConfig.Events
	// or Session.WithEvents; create one with NewEventLog.
	EventLog = obs.EventLog
	// Event is one structured event-log entry.
	Event = obs.Event
	// Verdict classifies a run's convergence health ("converging",
	// "plateau", "diverging", "warmup").
	Verdict = core.Verdict
	// Server is the serving plane: a long-lived multi-session
	// training/prediction server speaking the newline-delimited JSON
	// protocol of docs/PROTOCOL.md. Start one with NewServer.
	Server = serve.Server
	// ServeConfig configures a Server (listen address, worker count,
	// admission-control limits, telemetry, artifact root).
	ServeConfig = serve.Config
	// ServeClient is a protocol client for a running Server.
	ServeClient = serve.Client
	// JobStatus is the wire representation of one background TRAIN job.
	JobStatus = serve.JobStatus
	// JobState is a TRAIN job's lifecycle state (queued, running, done,
	// failed, canceled).
	JobState = serve.JobState
	// JobStats is one job's resource accounting (queue wait, wall/CPU time,
	// bytes read, tuples, blocks, peak buffer occupancy), reported on
	// status responses with stats=true and in corgi_job_stats.
	JobStats = serve.JobStats
	// History is the bounded metrics time-series store: it samples a
	// Metrics registry on an interval into fixed-size ring series with
	// downsampling tiers and evaluates threshold alert rules. Create one
	// with NewHistory; attach via Session.WithHistory or ServeConfig.
	History = obs.History
	// HistoryConfig configures a History (interval, ring slots, tiers).
	HistoryConfig = obs.HistoryConfig
	// HistoryPoint is one sampled value of one series at one resolution.
	HistoryPoint = obs.HistoryPoint
	// AlertRule is one threshold alert rule ("metric>value for 30s");
	// parse the flag syntax with ParseAlertRule.
	AlertRule = obs.AlertRule
	// AlertStatus is one alert rule's externally visible state.
	AlertStatus = obs.AlertStatus
)

// Tuple orders.
const (
	OrderShuffled  = data.OrderShuffled
	OrderClustered = data.OrderClustered
	OrderFeature   = data.OrderFeature
)

// Shuffling strategies.
const (
	NoShuffle     = shuffle.KindNoShuffle
	ShuffleOnce   = shuffle.KindShuffleOnce
	EpochShuffle  = shuffle.KindEpochShuffle
	SlidingWindow = shuffle.KindSlidingWindow
	MRSShuffle    = shuffle.KindMRS
	BlockOnly     = shuffle.KindBlockOnly
	CorgiPile     = shuffle.KindCorgiPile
)

// NewSession opens an in-DB ML session with simulated HDD/SSD/RAM devices.
func NewSession() *Session { return db.NewSession() }

// ParseFaultPlan parses a fault-plan spec of the form
// "seed=7,read_err=0.01,burst=3,err_ms=2,straggler=0.005,straggler_ms=50,corrupt=3;17".
func ParseFaultPlan(spec string) (FaultPlan, error) { return iosim.ParseFaultPlan(spec) }

// NewModel constructs a model by name: "lr", "svm", "linreg", "softmax",
// "mlp". classes is used by the multi-class models.
func NewModel(name string, classes int) (Model, error) { return ml.New(name, classes) }

// NewSGD returns an SGD optimizer with the paper's default 0.95 per-epoch
// learning-rate decay.
func NewSGD(lr float64) Optimizer { return ml.NewSGD(lr) }

// NewAdam returns an Adam optimizer.
func NewAdam(lr float64) Optimizer { return ml.NewAdam(lr) }

// NewMetrics returns an empty metrics registry. Pass it via
// TrainConfig.Metrics to collect a per-epoch breakdown of where training
// time goes; stream its JSONL event trace anywhere with StreamTo.
func NewMetrics() *Metrics { return obs.New() }

// NewRunFeed returns an empty live-status feed. Pass it via TrainConfig.Feed
// and to ServeTelemetry to watch a run over HTTP.
func NewRunFeed() *RunFeed { return obs.NewRunFeed() }

// NewEventLog returns an empty structured event log holding the most recent
// n events (0 = a sensible default). Stream every event as JSONL with
// StreamTo; query the ring via Events/Spans or, in a session, with
// SELECT * FROM corgi_events.
func NewEventLog(n int) *EventLog { return obs.NewEventLog(n) }

// NewHistory builds a metrics time-series store from cfg (zero fields
// take the defaults: 1s interval, 256 slots, 1×/10×/60× tiers). Start
// sampling a registry with Start; query with Query/Names/Alerts, over
// HTTP via /metrics/history, or in a session via corgi_metrics_history.
func NewHistory(cfg HistoryConfig) *History { return obs.NewHistory(cfg) }

// ParseAlertRule parses the -alert flag syntax: "metric>value" or
// "metric<value", optionally followed by " for 30s".
func ParseAlertRule(spec string) (AlertRule, error) { return obs.ParseAlertRule(spec) }

// ServeTelemetry starts the telemetry HTTP server on addr (host:port;
// port 0 picks a free one — read the bound address with Addr). It serves
// /metrics (Prometheus text format over reg), /run (live JSON or SSE from
// feed), and /debug/pprof/. Attaching reg switches it into live mode: the
// shuffle-buffer occupancy gauges and a runtime sampler (heap, goroutines,
// GC pauses) start recording. Close the server to stop both.
func ServeTelemetry(addr string, reg *Metrics, feed *RunFeed) (*TelemetryServer, error) {
	return obs.Serve(obs.ServeConfig{Addr: addr, Registry: reg, Feed: feed})
}

// NewServer starts the serving plane on cfg.Addr: a TCP server that
// parses the TRAIN BY / PREDICT BY dialect, queues TRAIN statements as
// cancellable background jobs behind admission control, and answers
// PREDICTs from cached models. See docs/PROTOCOL.md for the wire protocol
// and cmd/corgiserved for the binary.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// DialServer connects a client to a running Server and performs the
// protocol handshake.
func DialServer(addr string) (*ServeClient, error) { return serve.Dial(addr) }

// WriteEpochBreakdown renders per-epoch metrics rows (Result.Breakdown) as
// an aligned text table.
func WriteEpochBreakdown(w io.Writer, rows []EpochMetrics) error {
	return obs.WriteEpochTable(w, "epoch breakdown", rows)
}

// Synthetic generates a named synthetic workload ("higgs", "susy",
// "epsilon", "criteo", "yfcc", "cifar10", "imagenet", "yelp", "yearpred",
// "mini8m") at the given scale and order.
func Synthetic(workload string, scale float64, order Order) *Dataset {
	return data.Generate(workload, scale, order)
}
