package corgipile

import (
	"context"
	"fmt"
	"time"

	"corgipile/internal/core"
	"corgipile/internal/executor"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/shuffle"
	"corgipile/internal/storage"
)

// TrainConfig configures a high-level training run.
type TrainConfig struct {
	// Model names the learner: "lr", "svm", "linreg", "softmax", "mlp".
	Model string
	// Optimizer names the update rule: "sgd" (default) or "adam".
	Optimizer string
	// LearningRate is the initial step size (default 0.05).
	LearningRate float64
	// Decay multiplies the SGD learning rate after each epoch (default
	// 0.95, the paper's setting; ignored by Adam).
	Decay float64
	// L2 is the SGD weight-decay coefficient (0 = none; ignored by Adam).
	L2 float64
	// Epochs is the number of passes (default 10).
	Epochs int
	// BatchSize selects mini-batch SGD when > 1.
	BatchSize int
	// Procs is the number of gradient worker goroutines for mini-batch steps
	// (0 = GOMAXPROCS, 1 = single-threaded). The loss trace is bit-for-bit
	// identical at every setting; per-tuple SGD (BatchSize <= 1) ignores it.
	Procs int
	// Strategy is the shuffling strategy (default CorgiPile).
	Strategy StrategyKind
	// BufferFraction sizes the shuffle buffer (default 0.1).
	BufferFraction float64
	// DoubleBuffer enables the I/O-compute overlap optimization.
	DoubleBuffer bool
	// Device selects the simulated storage profile: "hdd", "ssd", "ram"
	// (default "ssd"). Ignored when training in memory via Train.
	Device string
	// BlockSize is the storage block size in bytes (default 10 MiB).
	BlockSize int64
	// Seed drives all randomness (default 1).
	Seed int64
	// Metrics, when non-nil, collects cross-layer observability data: it is
	// attached to the clock, device, shuffle strategy, and training loop, and
	// Result.Breakdown then carries one per-epoch time-breakdown row. Create
	// one with NewMetrics.
	Metrics *Metrics
	// Retries is the number of retry attempts after a transient block-read
	// error (0 = fail on the first error, today's default). Backoff between
	// attempts is exponential with deterministic jitter, charged to the
	// simulated clock.
	Retries int
	// RetryBackoff is the base backoff before the first retry (default 1ms).
	RetryBackoff time.Duration
	// OnCorrupt picks the degrade policy for permanently corrupt blocks:
	// "fail" (default) aborts; "skip" quarantines the block and keeps
	// training, recording the loss in Result.Faults.
	OnCorrupt string
	// MaxSkipFraction caps the tuple fraction "skip" may quarantine before
	// aborting anyway (0 = 5%).
	MaxSkipFraction float64
	// Faults, when non-nil, attaches a deterministic fault-injection plan to
	// the simulated device (TrainOnDevice only; Train has no device).
	Faults *FaultPlan
	// Diag, when non-nil, enables the convergence diagnostics (per-epoch
	// gradient norm, update norm, loss delta, plateau/divergence verdict);
	// Result.Diag and Result.Verdict carry the outcome. Diagnostics are
	// read-only: the loss trace is bit-for-bit identical with or without.
	Diag *DiagConfig
	// Feed, when non-nil, receives one live RunStatus update per epoch —
	// serve it over HTTP with ServeTelemetry.
	Feed *RunFeed
	// RunName labels feed updates (free-form).
	RunName string
	// Explain routes the run through the Volcano executor with per-operator
	// profiling enabled: Result.Plan then carries the annotated plan tree
	// (the EXPLAIN ANALYZE payload), and the same tree streams per epoch
	// through Feed. The executor implements the strategies as pull
	// operators, so an Explain run may visit tuples in a different order
	// than the default strategy-iterator engine — convergence behavior is
	// equivalent but the loss trace is not bit-identical across the two
	// engines.
	Explain bool
	// Ctx, when non-nil, cancels the run: training checks it between epochs
	// and every few hundred tuples inside an epoch, then returns the
	// context's error. This is the hook the serving plane uses to stop an
	// in-flight job (CANCEL, dropped connection); a nil Ctx never cancels.
	Ctx context.Context
	// Events, when non-nil, records one span per epoch in the structured
	// event log, stamped with Trace. A nil Events adds no work and never
	// touches the Metrics registry's JSONL trace.
	Events *EventLog
	// Trace labels this run's event-log spans (free-form request id).
	Trace string
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Model == "" {
		c.Model = "svm"
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.Strategy == "" {
		c.Strategy = CorgiPile
	}
	if c.BufferFraction == 0 {
		c.BufferFraction = 0.1
	}
	if c.Device == "" {
		c.Device = "ssd"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Train runs SGD over an in-memory dataset with the configured shuffling
// strategy and returns the convergence trace. I/O is not simulated; use
// TrainOnDevice for end-to-end timing over simulated storage.
func Train(ds *Dataset, cfg TrainConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	// N = 256 blocks, the same block-count regime as the paper's 10 MB
	// blocks over multi-GB tables.
	perBlock := ds.Len() / 256
	if perBlock < 1 {
		perBlock = 1
	}
	src := shuffle.NewMemSource(ds, perBlock)
	return trainOn(src, ds, cfg, nil)
}

// TrainOnDevice lays the dataset out as a table on a simulated device,
// trains with the configured strategy, and returns the trace with simulated
// times (including any strategy preprocessing such as Shuffle Once's full
// sort). The returned clock holds the total simulated duration.
func TrainOnDevice(ds *Dataset, cfg TrainConfig) (*Result, *Clock, error) {
	cfg = cfg.withDefaults()
	prof, ok := iosim.ProfileByName(cfg.Device)
	if !ok {
		return nil, nil, fmt.Errorf("corgipile: unknown device %q", cfg.Device)
	}
	clock := iosim.NewClock()
	cfg.Metrics.WithClock(clock)
	dev := iosim.NewDevice(prof, clock).WithCache(16 << 30).WithObs(cfg.Metrics)
	if cfg.Faults != nil {
		dev.WithFaults(*cfg.Faults)
	}
	tab, err := storage.Build(dev, ds, storage.Options{BlockSize: cfg.BlockSize})
	if err != nil {
		return nil, nil, err
	}
	res, err := trainOn(shuffle.TableSource(tab), ds, cfg, clock)
	return res, clock, err
}

// trainOn is the shared implementation of Train and TrainOnDevice.
func trainOn(src shuffle.Source, ds *Dataset, cfg TrainConfig, clock *Clock) (*Result, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("corgipile: empty dataset")
	}
	model, err := ml.New(cfg.Model, ds.Classes)
	if err != nil {
		return nil, err
	}
	opt, err := ml.NewOptimizer(cfg.Optimizer, cfg.LearningRate)
	if err != nil {
		return nil, err
	}
	if sgd, ok := opt.(*ml.SGD); ok {
		if cfg.Decay != 0 {
			sgd.Decay = cfg.Decay
		}
		sgd.L2 = cfg.L2
	}
	policy, err := shuffle.ParseFailurePolicy(cfg.OnCorrupt)
	if err != nil {
		return nil, err
	}
	res := shuffle.Resilience{
		Retry: storage.RetryPolicy{
			MaxAttempts: cfg.Retries + 1,
			Backoff:     cfg.RetryBackoff,
			Seed:        cfg.Seed,
		},
		OnCorrupt:       policy,
		MaxSkipFraction: cfg.MaxSkipFraction,
	}
	if cfg.Explain {
		// Profiled runs go through the Volcano executor, which builds its
		// own resilience wrapper and fault report from the plan config.
		pc := executor.PlanConfig{
			Shuffle:        cfg.Strategy,
			BufferFraction: cfg.BufferFraction,
			DoubleBuffer:   cfg.DoubleBuffer,
			Seed:           cfg.Seed,
			Resilience:     res,
			Profile:        true,
			SGD: executor.SGDConfig{
				Model:     model,
				Opt:       opt,
				Features:  ds.Features,
				Epochs:    cfg.Epochs,
				BatchSize: cfg.BatchSize,
				Procs:     cfg.Procs,
				Clock:     clock,
				Eval:      ds,
				Obs:       cfg.Metrics,
				Feed:      cfg.Feed,
				Diag:      cfg.Diag,
				RunName:   cfg.RunName,
				Ctx:       cfg.Ctx,
				Events:    cfg.Events,
				Trace:     cfg.Trace,
			},
		}
		if mlp, ok := model.(ml.MLP); ok {
			pc.SGD.InitWeights = core.MLPInit(mlp, ds.Features, cfg.Seed)
		}
		op, err := executor.BuildSGDPlan(src, pc)
		if err != nil {
			return nil, err
		}
		return op.RunResult()
	}
	var report *shuffle.FaultReport
	if res.Enabled() {
		report = shuffle.NewFaultReport()
	}
	st, err := shuffle.New(cfg.Strategy, src, shuffle.Options{
		BufferFraction: cfg.BufferFraction,
		Seed:           cfg.Seed,
		DoubleBuffer:   cfg.DoubleBuffer,
		Obs:            cfg.Metrics,
		Resilience:     res,
		FaultReport:    report,
	})
	if err != nil {
		return nil, err
	}
	rc := core.RunConfig{
		Strategy:  st,
		Model:     model,
		Opt:       opt,
		Features:  ds.Features,
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Procs:     cfg.Procs,
		Clock:     clock,
		TrainEval: ds,
		Seed:      cfg.Seed,
		Obs:       cfg.Metrics,
		Faults:    report,
		Diag:      cfg.Diag,
		Feed:      cfg.Feed,
		RunName:   cfg.RunName,
		Ctx:       cfg.Ctx,
		Events:    cfg.Events,
		Trace:     cfg.Trace,
	}
	if mlp, ok := model.(ml.MLP); ok {
		rc.InitWeights = core.MLPInit(mlp, ds.Features, cfg.Seed)
	}
	return core.Run(rc)
}

// CorgiPileDataset is the paper's PyTorch-style dataset API: it streams the
// tuples of an in-memory dataset in two-level shuffled order, one epoch at
// a time. Construct it once, then call Epoch for each pass:
//
//	cds := corgipile.NewCorgiPileDataset(ds, 0.1, 100, 1)
//	for epoch := 0; epoch < 10; epoch++ {
//		next := cds.Epoch(epoch)
//		for t, ok := next(); ok; t, ok = next() {
//			// feed t to the training loop
//		}
//	}
type CorgiPileDataset struct {
	src *shuffle.MemSource
	st  Strategy
}

// NewCorgiPileDataset wraps ds with two-level shuffling: blocks of
// blockTuples tuples, an in-memory buffer of bufferFraction of the dataset,
// randomness from seed.
func NewCorgiPileDataset(ds *Dataset, bufferFraction float64, blockTuples int, seed int64) (*CorgiPileDataset, error) {
	src := shuffle.NewMemSource(ds, blockTuples)
	st, err := shuffle.New(CorgiPile, src, shuffle.Options{
		BufferFraction: bufferFraction,
		Seed:           seed,
	})
	if err != nil {
		return nil, err
	}
	return &CorgiPileDataset{src: src, st: st}, nil
}

// Epoch returns a pull function streaming epoch s's shuffled tuples.
func (c *CorgiPileDataset) Epoch(s int) func() (*Tuple, bool) {
	it, err := c.st.StartEpoch(s)
	if err != nil {
		// MemSource epochs cannot fail; guard anyway.
		return func() (*Tuple, bool) { return nil, false }
	}
	return it.Next
}

// SimulatedSeconds converts a simulated duration to seconds for reporting.
func SimulatedSeconds(d time.Duration) float64 { return d.Seconds() }
