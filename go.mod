module corgipile

go 1.22
