package corgipile

import (
	"testing"
	"time"
)

// faultCfg is the shared baseline config for the end-to-end fault tests:
// small blocks so the table spans many blocks, a fixed seed so every run is
// reproducible.
func faultCfg() TrainConfig {
	return TrainConfig{
		Model:     "svm",
		Epochs:    4,
		Device:    "ssd",
		BlockSize: 32 << 10,
		Seed:      1,
	}
}

func sameWeights(t *testing.T, a, b []float64, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: weight dims differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: weight %d diverged: %v vs %v", label, i, a[i], b[i])
		}
	}
}

func TestZeroFaultPlanBitIdentical(t *testing.T) {
	ds := Synthetic("susy", 0.1, OrderClustered)
	base, baseClock, err := TrainOnDevice(ds, faultCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultCfg()
	cfg.Faults = &FaultPlan{Seed: 9} // no probabilities set: injects nothing
	faulted, faultClock, err := TrainOnDevice(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameWeights(t, base.W, faulted.W, "zero plan")
	if baseClock.Now() != faultClock.Now() {
		t.Fatalf("zero plan changed simulated time: %v vs %v",
			baseClock.Now(), faultClock.Now())
	}
	if faulted.Faults.Degraded() {
		t.Fatalf("zero plan reported faults: %+v", faulted.Faults)
	}
}

func TestTransientStormWithinBudgetSameWeights(t *testing.T) {
	ds := Synthetic("susy", 0.1, OrderClustered)
	base, baseClock, err := TrainOnDevice(ds, faultCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultCfg()
	cfg.Faults = &FaultPlan{Seed: 9, ReadErrorProb: 0.05, ErrorLatency: 2 * time.Millisecond}
	cfg.Retries = 4
	stormed, stormClock, err := TrainOnDevice(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stormed.Faults.TransientErrors == 0 {
		t.Fatal("5% read-error storm injected nothing")
	}
	// Retries absorb every transient error, so training sees the exact same
	// tuple stream: identical weights, only a slower simulated clock.
	sameWeights(t, base.W, stormed.W, "transient storm")
	if stormClock.Now() <= baseClock.Now() {
		t.Fatalf("storm run not slower: %v vs clean %v", stormClock.Now(), baseClock.Now())
	}
}

func TestFaultRunDeterministicAcrossProcs(t *testing.T) {
	ds := Synthetic("susy", 0.1, OrderClustered)
	run := func(procs int) *Result {
		cfg := faultCfg()
		cfg.BatchSize = 32
		cfg.Procs = procs
		cfg.Faults = &FaultPlan{Seed: 9, ReadErrorProb: 0.05}
		cfg.Retries = 4
		res, _, err := TrainOnDevice(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	p1 := run(1)
	p4 := run(4)
	if p1.Faults.TransientErrors != p4.Faults.TransientErrors {
		t.Fatalf("fault counts differ across Procs: %d vs %d",
			p1.Faults.TransientErrors, p4.Faults.TransientErrors)
	}
	sameWeights(t, p1.W, p4.W, "procs 1 vs 4")
}

func TestSkipCorruptEndToEnd(t *testing.T) {
	ds := Synthetic("susy", 0.1, OrderClustered)
	clean, _, err := TrainOnDevice(ds, faultCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultCfg()
	cfg.Faults = &FaultPlan{Seed: 9, CorruptBlocks: []int{2}}
	cfg.OnCorrupt = "skip"
	cfg.MaxSkipFraction = 0.25
	res, _, err := TrainOnDevice(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Faults.Degraded() {
		t.Fatal("corrupt block not recorded in Result.Faults")
	}
	if len(res.Faults.SkippedBlocks) != 1 || res.Faults.SkippedBlocks[0] != 2 {
		t.Fatalf("skipped blocks = %v, want [2]", res.Faults.SkippedBlocks)
	}
	if res.Faults.SkippedTuples <= 0 {
		t.Fatal("quarantine recorded no lost tuples")
	}
	// Losing one block must not wreck convergence: the degraded run stays
	// within a few points of the clean run's accuracy.
	if got, want := res.Final().TrainAcc, clean.Final().TrainAcc; got < want-0.05 {
		t.Fatalf("degraded run accuracy %.3f, clean run %.3f", got, want)
	}
}

func TestFailFastOnCorruptByDefault(t *testing.T) {
	ds := Synthetic("susy", 0.1, OrderClustered)
	cfg := faultCfg()
	cfg.Faults = &FaultPlan{Seed: 9, CorruptBlocks: []int{2}}
	cfg.Retries = 2 // resilience enabled, but policy stays fail-fast
	if _, _, err := TrainOnDevice(ds, cfg); err == nil {
		t.Fatal("fail-fast run trained through a corrupt block")
	}
}
