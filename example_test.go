package corgipile_test

import (
	"fmt"

	"corgipile"
)

// ExampleTrain trains an SVM over clustered data with CorgiPile and shows
// that it recovers the accuracy a full shuffle would give.
func ExampleTrain() {
	ds := corgipile.Synthetic("susy", 0.2, corgipile.OrderClustered)

	corgi, _ := corgipile.Train(ds, corgipile.TrainConfig{
		Model: "svm", Epochs: 6, Strategy: corgipile.CorgiPile,
	})
	noShuffle, _ := corgipile.Train(ds, corgipile.TrainConfig{
		Model: "svm", Epochs: 6, Strategy: corgipile.NoShuffle,
	})

	fmt.Println("corgipile beats sequential scanning:",
		corgi.Final().TrainAcc > noShuffle.Final().TrainAcc+0.1)
	// Output:
	// corgipile beats sequential scanning: true
}

// ExampleNewCorgiPileDataset streams tuples in two-level shuffled order,
// the PyTorch-style dataset API.
func ExampleNewCorgiPileDataset() {
	ds := corgipile.Synthetic("susy", 0.05, corgipile.OrderClustered)
	cds, _ := corgipile.NewCorgiPileDataset(ds, 0.1, 25, 1)

	seen := 0
	next := cds.Epoch(0)
	for {
		if _, ok := next(); !ok {
			break
		}
		seen++
	}
	fmt.Println("epoch covered every tuple exactly once:", seen == ds.Len())
	// Output:
	// epoch covered every tuple exactly once: true
}

// ExampleNewSession drives the in-DB ML interface end to end.
func ExampleNewSession() {
	s := corgipile.NewSession()
	s.Exec(`CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.05, order='clustered')`)
	res, _ := s.Exec(`SELECT * FROM t TRAIN BY svm MODEL m WITH max_epoch_num=3, shuffle='corgipile'`)
	fmt.Println("epoch rows:", len(res.Rows))
	fmt.Println(res.Message)
	// Output:
	// epoch rows: 3
	// TRAIN: model "m" stored
}
