-- Boot catalog for the docs/PROTOCOL.md worked transcript and
-- scripts/serve_smoke.sh. The transcript's responses are golden-tested
-- against a server booted with exactly this script (fixed seed via the
-- workload's built-in generator seed), so edits here require regenerating
-- the transcript in docs/PROTOCOL.md.
CREATE TABLE demo AS SYNTHETIC(workload='susy', scale=0.05, order='clustered') WITH device='ssd', block_size=16KB;
