#!/bin/sh
# Durability end-to-end smoke: boot corgiserved with a WAL, ingest and
# train over the wire, SIGKILL the server (no graceful shutdown), restart
# from the WAL alone (no -init) and assert the catalog recovered, then
# fold the post-restart ingest into an incremental TRAIN ... resume job,
# CHECKPOINT, kill again, and recover from the compacted checkpoint.
set -eux

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
servepid=""
trap 'kill -9 $servepid 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/corgiserved" ./cmd/corgiserved

# start_server LOGFILE [extra args...]: boot against the shared WAL dir
# and wait for the listen line. Sets $servepid and $addr.
start_server() {
    log=$1
    shift
    "$workdir/corgiserved" -listen 127.0.0.1:0 -workers 1 \
        -wal "$workdir/wal" "$@" >"$workdir/$log" 2>&1 &
    servepid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/^corgiserved: listening on \([^ ]*\).*/\1/p' "$workdir/$log" | head -n 1)
        [ -n "$addr" ] && break
        kill -0 $servepid || { cat "$workdir/$log"; exit 1; }
        sleep 0.2
    done
    [ -n "$addr" ] || { echo "corgiserved never started" >&2; cat "$workdir/$log"; exit 1; }
}

# 400 susy-shaped rows (18 features) — enough to append whole new 16KB
# blocks to the boot table.
rows=$(awk 'BEGIN{
    for (i = 0; i < 400; i++) {
        printf "(%d", 1 - 2 * (i % 2)
        for (f = 1; f <= 18; f++) printf ", %d", (i + f) % 11
        printf ")"
        if (i < 399) printf ", "
    }
}')

# Boot 1: fresh WAL, catalog from the init script. Ingest and train a
# base model, then SIGKILL — no graceful shutdown, the WAL is all that
# survives.
start_server serve1.log -init scripts/serve_init.sql
{
    printf '{"op":"sql","sql":"INSERT INTO demo VALUES %s"}\n' "$rows"
    printf '{"op":"train","sql":"SELECT * FROM demo TRAIN BY svm MODEL base WITH learning_rate=0.05, max_epoch_num=2, seed=7","wait":true}\n'
} >"$workdir/ingest.txt"
"$workdir/corgiserved" -connect "$addr" -replay "$workdir/ingest.txt" >"$workdir/ingest_out.txt"
grep -q '400 tuples' "$workdir/ingest_out.txt"
grep -q '"state":"done"' "$workdir/ingest_out.txt"
kill -9 $servepid
wait $servepid 2>/dev/null || true

# Boot 2: WAL only, no -init. The catalog (table + model) must come back
# from log replay, the appended tuples included.
start_server serve2.log
grep -q 'wal: recovered 1 tables, 1 models' "$workdir/serve2.log"
{
    printf '{"op":"sql","sql":"SHOW MODELS"}\n'
    printf '{"op":"sql","sql":"INSERT INTO demo VALUES %s"}\n' "$rows"
    printf '{"op":"train","sql":"SELECT * FROM demo TRAIN BY svm MODEL base2 WITH resume=%s, max_epoch_num=2, seed=7","wait":true}\n' "'base'"
    printf '{"op":"predict","sql":"SELECT * FROM demo PREDICT BY base2 LIMIT 1"}\n'
    printf '{"op":"sql","sql":"CHECKPOINT"}\n'
} >"$workdir/resume.txt"
"$workdir/corgiserved" -connect "$addr" -replay "$workdir/resume.txt" >"$workdir/resume_out.txt"
grep -q '"base"' "$workdir/resume_out.txt"          # recovered model listed
grep -q '"state":"done"' "$workdir/resume_out.txt"  # incremental job ran
grep -q 'PREDICT: ' "$workdir/resume_out.txt"       # resumed model answers
grep -q 'wal truncated' "$workdir/resume_out.txt"   # checkpoint compacted
kill -9 $servepid
wait $servepid 2>/dev/null || true

# Boot 3: recovery now reads the compacted checkpoint (both models, the
# doubled table) with an empty log tail.
start_server serve3.log
grep -q 'wal: recovered 1 tables, 2 models' "$workdir/serve3.log"
printf '{"op":"sql","sql":"SHOW TABLES"}\n' >"$workdir/show.txt"
"$workdir/corgiserved" -connect "$addr" -replay "$workdir/show.txt" >"$workdir/show_out.txt"
grep -q '"1300"' "$workdir/show_out.txt"            # 500 boot + 2x400 ingested
kill -9 $servepid
wait $servepid 2>/dev/null || true
servepid=""

echo "recovery smoke: OK"
