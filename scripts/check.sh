#!/bin/sh
# Full verification gate, equivalent to `make check`: build, vet, the test
# suite, the race detector over the internal packages, and the fuzz seed
# corpora (hostile block/tuple headers must stay rejected; hostile WAL
# bytes must replay to a clean prefix without a panic).
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/...
go test -run 'Fuzz' ./internal/storage/

# EXPLAIN ANALYZE golden output: the executed-plan tree must keep its
# Postgres-style shape — node headers, tree connectors, and per-node
# actual annotations — end to end through the SQL front-end.
plan=$(go run ./cmd/corgisql -c "CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.05) WITH block_size=16KB; EXPLAIN ANALYZE SELECT * FROM t TRAIN BY svm WITH shuffle='corgipile', buffer_fraction=0.1, max_epoch_num=2")
echo "$plan" | grep -q 'SGD (model=svm'
echo "$plan" | grep -q '└─ TupleShuffle'
echo "$plan" | grep -q '└─ BlockShuffle'
echo "$plan" | grep -q '(actual: rows='
echo "$plan" | grep -q 'EXPLAIN ANALYZE: model'

# Serving-plane smoke: boot corgiserved, replay the docs/PROTOCOL.md
# transcript byte-for-byte, scrape per-job telemetry, run -serve-load.
./scripts/serve_smoke.sh

# Durability smoke: SIGKILL a WAL-backed corgiserved mid-catalog, restart
# without -init, assert recovery + incremental TRAIN ... resume.
./scripts/recovery_smoke.sh

# Replication smoke: primary + streaming replica, lag gauge to zero,
# SIGKILL the primary mid-ingest, PROMOTE, and assert the promoted
# server's resume TRAIN is byte-identical to single-node crash recovery.
./scripts/replication_smoke.sh

# Introspection smoke: boot corgiserved with the event log on, start a
# detached traced TRAIN, and interrogate the live server with SELECT
# (corgi_jobs / corgi_metrics / corgi_events) over the wire; probe
# /healthz, /readyz, and the WAL gauges.
./scripts/introspect_smoke.sh

# Metrics-history smoke: boot corgiserved with -sample and an -alert
# rule, train through injected faults, and assert the time series
# (corgi_metrics_history / /metrics/history), the firing→resolved alert
# (corgi_alerts / /alertz / event log), per-job stats (corgi_job_stats),
# and a corgitop -once frame.
./scripts/history_smoke.sh
