#!/bin/sh
# Serving-plane end-to-end smoke: boot a real corgiserved, replay the
# docs/PROTOCOL.md worked transcript against it and diff the responses
# byte-for-byte against the documented ones, scrape the per-job telemetry
# feed while a TRAIN is live, check per-job durable artifacts, and run a
# short corgibench -serve-load. Fails on any drift between the protocol
# document and the server's actual behavior.
set -eux

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill $servepid 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/corgiserved" ./cmd/corgiserved
go build -o "$workdir/corgibench" ./cmd/corgibench

# Extract the worked transcript (C: request / S: expected-response pairs)
# from the protocol document.
awk '/^## Worked transcript/{s=1} s&&/^## /&&!/Worked transcript/{s=0} s' docs/PROTOCOL.md \
    | grep -E '^[CS]: ' >"$workdir/transcript.txt"
grep -c '^C: ' "$workdir/transcript.txt" | grep -qv '^0$'

# Boot the server exactly as the document describes (workers=1, catalog
# from scripts/serve_init.sql), with telemetry and per-job artifacts on.
"$workdir/corgiserved" -listen 127.0.0.1:0 -workers 1 \
    -init scripts/serve_init.sql -telemetry 127.0.0.1:0 \
    -run-root "$workdir/runs" >"$workdir/serve.log" 2>&1 &
servepid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^corgiserved: listening on \([^ ]*\).*/\1/p' "$workdir/serve.log" | head -n 1)
    [ -n "$addr" ] && break
    kill -0 $servepid || { cat "$workdir/serve.log"; exit 1; }
    sleep 0.2
done
[ -n "$addr" ] || { echo "corgiserved never started" >&2; cat "$workdir/serve.log"; exit 1; }
telurl=$(sed -n 's/^corgiserved: telemetry on //p' "$workdir/serve.log" | head -n 1)

# Replay the documented transcript verbatim; the responses must match the
# documented S: lines byte-for-byte.
"$workdir/corgiserved" -connect "$addr" -replay "$workdir/transcript.txt" >"$workdir/replay.txt"
grep '^S: ' "$workdir/transcript.txt" >"$workdir/expected.txt"
diff -u "$workdir/expected.txt" "$workdir/replay.txt"

# Per-job telemetry: start a long TRAIN on a fresh session, scrape its
# private /run?job= feed mid-flight, then cancel it.
printf '%s\n' \
    '{"op":"train","sql":"SELECT * FROM demo TRAIN BY svm MODEL live WITH learning_rate=0.05, max_epoch_num=1000000, seed=7"}' \
    >"$workdir/start.txt"
"$workdir/corgiserved" -connect "$addr" -replay "$workdir/start.txt" >"$workdir/start_out.txt" &
replaypid=$!
# The job is j3 (the transcript consumed j1/j2). Wait for its feed to
# publish a first epoch, then check the live status and the job table.
ok=""
for _ in $(seq 1 50); do
    if curl -sf "$telurl/run?job=j3" >"$workdir/job.json" 2>/dev/null \
        && grep -q '"epoch"' "$workdir/job.json"; then ok=1; break; fi
    sleep 0.2
done
[ -n "$ok" ] || { echo "per-job feed never published" >&2; cat "$workdir/serve.log"; exit 1; }
grep -q '"run": "j3 train live"' "$workdir/job.json"
# The shared /metrics registry serves the live runtime gauges; training
# counters live in each job's private registry (see runs/<id>/metrics.prom).
curl -sf "$telurl/metrics" | grep -q '^corgipile_runtime_goroutines'

printf '%s\n' '{"op":"cancel","job":"j3","wait":true}' '{"op":"status"}' >"$workdir/cancel.txt"
"$workdir/corgiserved" -connect "$addr" -replay "$workdir/cancel.txt" >"$workdir/cancel_out.txt"
grep -q '"state":"canceled"' "$workdir/cancel_out.txt"
wait $replaypid 2>/dev/null || true

# Per-job durable artifacts appear once the job is terminal.
for _ in $(seq 1 50); do
    [ -f "$workdir/runs/j3/manifest.json" ] && break
    sleep 0.2
done
grep -q '"tool": "corgiserved"' "$workdir/runs/j3/manifest.json"
grep -q '"epoch":1' "$workdir/runs/j3/epochs.jsonl"
grep -q '^corgipile_sgd_tuples' "$workdir/runs/j3/metrics.prom"

kill $servepid 2>/dev/null || true
wait $servepid 2>/dev/null || true

# The load generator end to end: predict tail latency under two live
# background TRAINs, with the mid-run cancellation probe.
"$workdir/corgibench" -serve-load -predicts 400 -predict-clients 2 >"$workdir/load.txt"
grep -q 'latency p50' "$workdir/load.txt"
grep -q 'slot re-admitted' "$workdir/load.txt"

echo "serve smoke: OK"
