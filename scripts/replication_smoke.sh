#!/bin/sh
# Replication end-to-end smoke: boot a WAL-backed primary publishing its
# replication stream, attach a read-only replica, drive ingest + TRAIN on
# the primary and watch corgipile_repl_lag_lsn reach 0 on the telemetry
# plane, assert the replica rejects writes (ERR_READ_ONLY) but serves
# PREDICT, then SIGKILL the primary mid-ingest, PROMOTE the replica, and
# prove the promoted server's TRAIN ... resume is byte-identical to a
# single-node crash recovery of the same WAL directory.
set -eux

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
primpid=""
reppid=""
solopid=""
trap 'kill -9 $primpid $reppid $solopid 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/corgiserved" ./cmd/corgiserved

# wait_line LOGFILE SEDPATTERN: poll a server log for an announce line and
# echo the captured value.
wait_line() {
    out=""
    for _ in $(seq 1 50); do
        out=$(sed -n "$2" "$workdir/$1" | head -n 1)
        [ -n "$out" ] && break
        sleep 0.2
    done
    [ -n "$out" ] || { echo "no match for $2 in $1" >&2; cat "$workdir/$1" >&2; exit 1; }
    echo "$out"
}

# wait_metric BASEURL NAME VALUE: poll /metrics until the gauge reports
# the exact value.
wait_metric() {
    for _ in $(seq 1 100); do
        if curl -sf "$1/metrics" | grep -q "^$2 $3\$"; then
            return 0
        fi
        sleep 0.2
    done
    echo "metric $2 never reached $3 at $1" >&2
    curl -sf "$1/metrics" | grep "^corgipile_repl" >&2 || true
    exit 1
}

# 400 susy-shaped rows (18 features), same generator as recovery_smoke.sh.
rows=$(awk 'BEGIN{
    for (i = 0; i < 400; i++) {
        printf "(%d", 1 - 2 * (i % 2)
        for (f = 1; f <= 18; f++) printf ", %d", (i + f) % 11
        printf ")"
        if (i < 399) printf ", "
    }
}')

# Primary: fresh WAL, boot catalog, replication stream + telemetry on
# ephemeral ports.
"$workdir/corgiserved" -listen 127.0.0.1:0 -workers 1 \
    -wal "$workdir/prim" -init scripts/serve_init.sql \
    -replica-listen 127.0.0.1:0 -telemetry 127.0.0.1:0 \
    >"$workdir/prim.log" 2>&1 &
primpid=$!
primaddr=$(wait_line prim.log 's/^corgiserved: listening on \([^ ]*\).*/\1/p')
streamaddr=$(wait_line prim.log 's/^corgiserved: replicating on //p')
primtel=$(wait_line prim.log 's/^corgiserved: telemetry on //p')

# Replica: own WAL directory, mirrors the primary, no -init (the catalog
# comes from the stream).
"$workdir/corgiserved" -listen 127.0.0.1:0 -workers 1 \
    -wal "$workdir/rep" -replicate-from "$streamaddr" -telemetry 127.0.0.1:0 \
    >"$workdir/rep.log" 2>&1 &
reppid=$!
repaddr=$(wait_line rep.log 's/^corgiserved: listening on \([^ ]*\).*/\1/p')
reptel=$(wait_line rep.log 's/^corgiserved: telemetry on //p')
grep -q 'read-only until PROMOTE' "$workdir/rep.log"

# Ingest + base TRAIN on the primary; both replicate through the stream.
{
    printf '{"op":"sql","sql":"INSERT INTO demo VALUES %s"}\n' "$rows"
    printf '{"op":"train","sql":"SELECT * FROM demo TRAIN BY svm MODEL base WITH learning_rate=0.05, max_epoch_num=2, seed=7, shuffle=%s","wait":true}\n' "'corgipile'"
    printf '{"op":"sql","sql":"INSERT INTO demo VALUES %s"}\n' "$rows"
} >"$workdir/ingest.txt"
"$workdir/corgiserved" -connect "$primaddr" -replay "$workdir/ingest.txt" >"$workdir/ingest_out.txt"
grep -q '400 tuples' "$workdir/ingest_out.txt"
grep -q '"state":"done"' "$workdir/ingest_out.txt"

# The lag gauge must drain to zero with one connected replica before the
# failover is allowed to proceed.
wait_metric "$primtel" corgipile_repl_replicas 1
wait_metric "$primtel" corgipile_repl_lag_lsn 0

# Replica serves reads (the replicated model answers PREDICT) and rejects
# writes with ERR_READ_ONLY.
{
    printf '{"op":"sql","sql":"SHOW MODELS"}\n'
    printf '{"op":"predict","sql":"SELECT * FROM demo PREDICT BY base LIMIT 1"}\n'
    printf '{"op":"sql","sql":"INSERT INTO demo VALUES (1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1, 2, 3, 4, 5, 6, 7, 8)"}\n'
} >"$workdir/replica_ro.txt"
"$workdir/corgiserved" -connect "$repaddr" -replay "$workdir/replica_ro.txt" >"$workdir/replica_ro_out.txt"
grep -q '"base"' "$workdir/replica_ro_out.txt"
grep -q 'PREDICT: ' "$workdir/replica_ro_out.txt"
grep -q 'ERR_READ_ONLY' "$workdir/replica_ro_out.txt"

# Failover drill: SIGKILL the primary mid-ingest storm — no graceful
# shutdown, the stream just dies.
awk 'BEGIN{
    for (b = 0; b < 40; b++) {
        printf "{\"op\":\"sql\",\"sql\":\"INSERT INTO demo VALUES "
        for (i = 0; i < 20; i++) {
            printf "(%d", 1 - 2 * (i % 2)
            for (f = 1; f <= 18; f++) printf ", %d", (b + i + f) % 13
            printf ")"
            if (i < 19) printf ", "
        }
        printf "\"}\n"
    }
}' >"$workdir/storm.txt"
"$workdir/corgiserved" -connect "$primaddr" -replay "$workdir/storm.txt" >"$workdir/storm_out.txt" 2>&1 || true &
stormpid=$!
sleep 0.5
kill -9 $primpid
wait $primpid 2>/dev/null || true
wait $stormpid 2>/dev/null || true
primpid=""

# Let the replica settle: its durable applied LSN must stop moving once
# the stream is gone.
prev=-1
for _ in $(seq 1 50); do
    cur=$(curl -sf "$reptel/metrics" | sed -n 's/^corgipile_repl_applied_lsn //p')
    [ -n "$cur" ] && [ "$cur" = "$prev" ] && break
    prev=$cur
    sleep 0.2
done

# Freeze a copy of the replica's WAL directory: booting it standalone IS
# single-node crash recovery, the determinism baseline for the promoted
# server.
cp -r "$workdir/rep" "$workdir/solo"

# Promote over the wire; the replica becomes writable at its applied LSN.
"$workdir/corgiserved" -connect "$repaddr" -promote >"$workdir/promote_out.txt"
grep -q 'promoted: writable at lsn' "$workdir/promote_out.txt"

# The promoted server trains the incremental resume model and accepts
# writes again.
{
    printf '{"op":"train","sql":"SELECT * FROM demo TRAIN BY svm MODEL base2 WITH resume=%s, learning_rate=0.05, max_epoch_num=2, seed=7, shuffle=%s","wait":true}\n' "'base'" "'corgipile'"
    printf '{"op":"sql","sql":"SAVE MODEL base2 TO %s"}\n' "'$workdir/w_promoted.json'"
    printf '{"op":"sql","sql":"INSERT INTO demo VALUES (1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1, 2, 3, 4, 5, 6, 7, 8)"}\n'
} >"$workdir/promoted.txt"
"$workdir/corgiserved" -connect "$repaddr" -replay "$workdir/promoted.txt" >"$workdir/promoted_out.txt"
grep -q '"state":"done"' "$workdir/promoted_out.txt"
grep -q '1 tuples' "$workdir/promoted_out.txt"

# Single-node crash recovery over the frozen copy, then the identical
# resume TRAIN. The saved weights must match the promoted server's
# byte for byte.
"$workdir/corgiserved" -listen 127.0.0.1:0 -workers 1 \
    -wal "$workdir/solo" >"$workdir/solo.log" 2>&1 &
solopid=$!
soloaddr=$(wait_line solo.log 's/^corgiserved: listening on \([^ ]*\).*/\1/p')
{
    printf '{"op":"train","sql":"SELECT * FROM demo TRAIN BY svm MODEL base2 WITH resume=%s, learning_rate=0.05, max_epoch_num=2, seed=7, shuffle=%s","wait":true}\n' "'base'" "'corgipile'"
    printf '{"op":"sql","sql":"SAVE MODEL base2 TO %s"}\n' "'$workdir/w_solo.json'"
} >"$workdir/solo.txt"
"$workdir/corgiserved" -connect "$soloaddr" -replay "$workdir/solo.txt" >"$workdir/solo_out.txt"
grep -q '"state":"done"' "$workdir/solo_out.txt"

cmp "$workdir/w_promoted.json" "$workdir/w_solo.json"

echo "replication smoke: OK"
