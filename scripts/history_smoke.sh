#!/bin/sh
# Metrics-history-plane end-to-end smoke: boot a real corgiserved with
# sampling, an alert rule, and a size-capped rotating event sink; create
# a fault-injected table OVER THE WIRE (so its device reports into the
# server's registry); train through it with retries; and verify the
# degradation is observable everywhere the plane surfaces it —
# corgi_metrics_history / corgi_alerts / corgi_job_stats over SQL,
# /metrics/history and /alertz over HTTP, corgitop -once, and the
# alert.firing → alert.resolved bracket in the JSONL event log.
set -eux

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill $servepid 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/corgiserved" ./cmd/corgiserved
go build -o "$workdir/corgitop" ./cmd/corgitop

# The alert threshold is on the jobs-running gauge so the smoke is
# deterministic: it fires the moment the TRAIN is picked up and resolves
# when the job reaches a terminal state.
"$workdir/corgiserved" -listen 127.0.0.1:0 -workers 1 \
    -telemetry 127.0.0.1:0 -sample 100ms \
    -alert 'serve.jobs_running>0' \
    -events "$workdir/events.jsonl" -events-max-size 1MB \
    >"$workdir/serve.log" 2>&1 &
servepid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^corgiserved: listening on \([^ ]*\).*/\1/p' "$workdir/serve.log" | head -n 1)
    [ -n "$addr" ] && break
    kill -0 $servepid || { cat "$workdir/serve.log"; exit 1; }
    sleep 0.2
done
[ -n "$addr" ] || { echo "corgiserved never started" >&2; cat "$workdir/serve.log"; exit 1; }
telurl=$(sed -n 's/^corgiserved: telemetry on //p' "$workdir/serve.log" | head -n 1)

# The flaky table must be created over the wire, after boot: the device
# registers with the server's live registry, so its fault counters land
# in the sampled series.
"$workdir/corgiserved" -connect "$addr" -exec \
    "CREATE TABLE flaky AS SYNTHETIC(workload='susy', scale=0.1, order='clustered') WITH device='ssd', block_size=32KB, faults='seed=9,read_err=0.05,burst=2'" \
    >"$workdir/create.txt"
grep -q '"ok":true' "$workdir/create.txt"

# A long TRAIN through the faults, detached, with retries absorbing the
# injected transient errors. retries=6 gives 7 attempts per block read:
# the plan's bursts are 2 long, so exceeding the budget needs 5 further
# independent 5% faults — it cannot realistically fail while we probe.
printf '%s\n' \
    '{"op":"train","sql":"SELECT * FROM flaky TRAIN BY svm MODEL survivor WITH learning_rate=0.05, max_epoch_num=1000000, retries=6, seed=7","detach":true}' \
    >"$workdir/start.txt"
"$workdir/corgiserved" -connect "$addr" -replay "$workdir/start.txt" >"$workdir/start_out.txt"
grep -q '"id":"j1"' "$workdir/start_out.txt"

# The alert (no `for` clause) fires on the first sample that sees the
# job running; corgi_alerts shows the transition over the wire. (The
# rule name's '>' arrives JSON-escaped as >, so match the metric.)
ok=""
for _ in $(seq 1 50); do
    "$workdir/corgiserved" -connect "$addr" \
        -exec "SELECT name, state, fired FROM corgi_alerts WHERE state = 'firing'" >"$workdir/alerts.txt"
    if grep -q 'serve.jobs_running' "$workdir/alerts.txt"; then
        ok=1
        break
    fi
    sleep 0.2
done
[ -n "$ok" ] || { echo "alert never fired" >&2; cat "$workdir/alerts.txt" "$workdir/serve.log"; exit 1; }

# The acceptance query: the sampled time series is SQL-visible while the
# TRAIN is live, and the injected faults show up as a sampled series too.
# (Job-private counters like sgd.tuples live in the job's own registry —
# the shared sampled registry carries the serve gauges and device I/O.)
ok=""
for _ in $(seq 1 50); do
    "$workdir/corgiserved" -connect "$addr" \
        -exec "SELECT name, ts, value FROM corgi_metrics_history WHERE name = 'serve.jobs_running' ORDER BY ts DESC LIMIT 4" \
        >"$workdir/history.txt"
    if grep -q 'serve.jobs_running' "$workdir/history.txt"; then
        ok=1
        break
    fi
    sleep 0.2
done
[ -n "$ok" ] || { echo "no sampled history over the wire" >&2; cat "$workdir/history.txt"; exit 1; }
"$workdir/corgiserved" -connect "$addr" \
    -exec "SELECT name FROM corgi_metrics_history WHERE name = 'io.fault.transient' LIMIT 1" >"$workdir/faulthist.txt"
grep -q 'io.fault.transient' "$workdir/faulthist.txt"

# Per-job resource accounting: the running job reports wall time and
# tuple/block progress in corgi_job_stats.
"$workdir/corgiserved" -connect "$addr" \
    -exec "SELECT id, state, wall_ms, tuples FROM corgi_job_stats WHERE id = 'j1'" >"$workdir/jobstats.txt"
grep -q '"j1","running"' "$workdir/jobstats.txt"

# The HTTP plane serves the same store: /metrics/history with a name
# filter and /alertz with the firing rule.
curl -sf "$telurl/metrics/history?name=serve.jobs_running&since=5m" >"$workdir/http_history.json"
grep -q '"serve.jobs_running"' "$workdir/http_history.json"
grep -q '"resolution"' "$workdir/http_history.json"
curl -sf "$telurl/alertz" >"$workdir/http_alertz.json"
grep -q '"state": "firing"' "$workdir/http_alertz.json"

# corgitop renders one frame from the same endpoints.
"$workdir/corgitop" -connect "$telurl" -once >"$workdir/top.txt"
grep -q 'corgitop' "$workdir/top.txt"
grep -q 'serve.jobs_running' "$workdir/top.txt"
grep -q 'firing' "$workdir/top.txt"

# Cancel the job: the gauge drops to zero and the alert resolves.
printf '%s\n' '{"op":"cancel","job":"j1","wait":true}' >"$workdir/cancel.txt"
"$workdir/corgiserved" -connect "$addr" -replay "$workdir/cancel.txt" >"$workdir/cancel_out.txt"
grep -q '"state":"canceled"' "$workdir/cancel_out.txt"
ok=""
for _ in $(seq 1 50); do
    "$workdir/corgiserved" -connect "$addr" \
        -exec "SELECT name, fired FROM corgi_alerts WHERE state = 'ok'" >"$workdir/resolved.txt"
    if grep -q 'serve.jobs_running' "$workdir/resolved.txt"; then
        ok=1
        break
    fi
    sleep 0.2
done
[ -n "$ok" ] || { echo "alert never resolved after cancel" >&2; cat "$workdir/resolved.txt"; exit 1; }

# Both transitions are in the event ring and the JSONL sink.
"$workdir/corgiserved" -connect "$addr" \
    -exec "SELECT type FROM corgi_events WHERE type = 'alert.firing'" >"$workdir/ev_firing.txt"
grep -q 'alert.firing' "$workdir/ev_firing.txt"
"$workdir/corgiserved" -connect "$addr" \
    -exec "SELECT type FROM corgi_events WHERE type = 'alert.resolved'" >"$workdir/ev_resolved.txt"
grep -q 'alert.resolved' "$workdir/ev_resolved.txt"
grep -q '"type":"alert.firing"' "$workdir/events.jsonl"
grep -q '"type":"alert.resolved"' "$workdir/events.jsonl"

kill $servepid 2>/dev/null || true
wait $servepid 2>/dev/null || true

echo "history smoke: OK"
