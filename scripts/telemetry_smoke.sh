#!/bin/sh
# Telemetry end-to-end smoke: boot a real training run with -serve, scrape
# /metrics, /run and the live /run/plan executed-plan tree over HTTP while
# it executes, and hold the committed fault-sweep baseline with corgibench
# -compare. Fails on any missing endpoint, malformed exposition output, or
# benchmark regression.
set -eux

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill $trainpid 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/corgitrain" ./cmd/corgitrain
go build -o "$workdir/corgibench" ./cmd/corgibench

# A run long enough (~wall seconds) to scrape mid-flight: large synthetic
# dataset, many epochs. -serve 127.0.0.1:0 picks a free port and prints it.
"$workdir/corgitrain" -synthetic higgs -scale 20 -epochs 500 -diag -explain \
    -serve 127.0.0.1:0 >"$workdir/train.log" 2>&1 &
trainpid=$!

# Wait for the server to come up and read its address from the log.
url=""
for _ in $(seq 1 50); do
    url=$(sed -n 's/^telemetry on //p' "$workdir/train.log" | head -n 1)
    [ -n "$url" ] && break
    kill -0 $trainpid || { cat "$workdir/train.log"; exit 1; }
    sleep 0.2
done
[ -n "$url" ] || { echo "telemetry server never started" >&2; cat "$workdir/train.log"; exit 1; }

# Give the run a moment to publish its first epoch, then scrape.
sleep 2
curl -sf "$url/metrics" >"$workdir/metrics.prom"
grep -q '^# TYPE corgipile_sgd_tuples counter' "$workdir/metrics.prom"
grep -q '^corgipile_epoch_seconds{quantile="0.99"}' "$workdir/metrics.prom"
grep -q '^corgipile_runtime_goroutines' "$workdir/metrics.prom"

curl -sf "$url/run" >"$workdir/run.json"
grep -q '"run": "corgitrain svm/higgs"' "$workdir/run.json"
grep -q '"epoch"' "$workdir/run.json"
grep -q '"verdict"' "$workdir/run.json"

# The SSE stream must deliver at least one per-epoch event.
curl -sN --max-time 10 "$url/run?stream=1" | head -n 1 | grep -q '^data: {'

# The live executed-plan endpoint serves the annotated tree (the run was
# started with -explain, so the profiler publishes it once per epoch).
curl -sf "$url/run/plan" >"$workdir/plan.txt"
grep -q '^epoch ' "$workdir/plan.txt"
grep -q 'SGD (model=svm' "$workdir/plan.txt"
grep -q '(actual: rows=' "$workdir/plan.txt"
curl -sf "$url/run/plan?format=json" | grep -q '"name": "SGD"'

# pprof is mounted and serves a real profile.
curl -sf "$url/debug/pprof/profile?seconds=1" >"$workdir/cpu.pprof"
[ -s "$workdir/cpu.pprof" ]

kill $trainpid 2>/dev/null || true
wait $trainpid 2>/dev/null || true

# Durable run artifacts: a short run must leave a stamped manifest, the
# per-epoch breakdown, and a final Prometheus snapshot behind.
"$workdir/corgitrain" -synthetic higgs -epochs 3 -metrics -explain \
    -run-dir "$workdir/run" >/dev/null
grep -q '"git_sha"' "$workdir/run/manifest.json"
grep -q '"tool": "corgitrain"' "$workdir/run/manifest.json"
grep -q '"epoch":1' "$workdir/run/epochs.jsonl"
grep -q '^corgipile_sgd_tuples' "$workdir/run/metrics.prom"
grep -q '"name": "SGD"' "$workdir/run/plan.json"

# Regression gate: the simulated fault sweep is deterministic, so the
# committed baseline must reproduce near-exactly on any machine.
"$workdir/corgibench" -compare BENCH_faults.json

echo "telemetry smoke: OK"
