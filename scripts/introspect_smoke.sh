#!/bin/sh
# Introspection-plane end-to-end smoke: boot a real corgiserved with the
# structured event log streaming to JSONL, start a detached TRAIN over the
# wire with a client-chosen trace ID, and interrogate the live server with
# SELECT over the same wire protocol — the running job (with its trace)
# must be visible in corgi_jobs, the metrics registry in corgi_metrics,
# and the job transition in corgi_events. Also checks the /healthz and
# /readyz probes and the WAL gauges on /metrics.
set -eux

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill $servepid 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/corgiserved" ./cmd/corgiserved

"$workdir/corgiserved" -listen 127.0.0.1:0 -workers 1 \
    -init scripts/serve_init.sql -telemetry 127.0.0.1:0 \
    -wal "$workdir/wal" -events "$workdir/events.jsonl" \
    -slow-statement 2h >"$workdir/serve.log" 2>&1 &
servepid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^corgiserved: listening on \([^ ]*\).*/\1/p' "$workdir/serve.log" | head -n 1)
    [ -n "$addr" ] && break
    kill -0 $servepid || { cat "$workdir/serve.log"; exit 1; }
    sleep 0.2
done
[ -n "$addr" ] || { echo "corgiserved never started" >&2; cat "$workdir/serve.log"; exit 1; }
telurl=$(sed -n 's/^corgiserved: telemetry on //p' "$workdir/serve.log" | head -n 1)

# Start a detached TRAIN with a client trace ID; detach keeps it running
# after this submitting connection closes.
printf '%s\n' \
    '{"op":"train","sql":"SELECT * FROM demo TRAIN BY svm MODEL live WITH learning_rate=0.05, max_epoch_num=1000000, seed=7","detach":true,"trace":"smoke-trace"}' \
    >"$workdir/start.txt"
"$workdir/corgiserved" -connect "$addr" -replay "$workdir/start.txt" >"$workdir/start_out.txt"
# The traced submit ack echoes the trace.
grep -q '"trace":"smoke-trace"' "$workdir/start_out.txt"

# Interrogate the live server with SELECT over the wire: the running job
# must appear in corgi_jobs carrying the client's trace ID.
ok=""
for _ in $(seq 1 50); do
    "$workdir/corgiserved" -connect "$addr" \
        -exec "SELECT * FROM corgi_jobs WHERE state = 'running'" >"$workdir/jobs.txt"
    if grep -q '"j1"' "$workdir/jobs.txt" && grep -q 'smoke-trace' "$workdir/jobs.txt"; then
        ok=1
        break
    fi
    sleep 0.2
done
[ -n "$ok" ] || { echo "running job never appeared in corgi_jobs" >&2; cat "$workdir/jobs.txt" "$workdir/serve.log"; exit 1; }

# The metrics registry is SQL-queryable.
"$workdir/corgiserved" -connect "$addr" \
    -exec "SELECT name, kind, value FROM corgi_metrics ORDER BY name LIMIT 5" >"$workdir/metrics.txt"
grep -q '"columns":\["name","kind","value"\]' "$workdir/metrics.txt"

# The event ring recorded the job transition, stamped with the trace.
"$workdir/corgiserved" -connect "$addr" \
    -exec "SELECT type, trace_id FROM corgi_events WHERE type = 'job.running'" >"$workdir/events.txt"
grep -q 'job.running' "$workdir/events.txt"
grep -q 'smoke-trace' "$workdir/events.txt"

# The live connection count includes the -exec session itself.
"$workdir/corgiserved" -connect "$addr" \
    -exec "SELECT id, requests FROM corgi_sessions" >"$workdir/sessions.txt"
grep -q '"columns":\["id","requests"\]' "$workdir/sessions.txt"

# Probes and WAL gauges on the telemetry plane.
curl -sf "$telurl/healthz" | grep -q '^ok$'
curl -sf "$telurl/readyz" | grep -q '^ok$'
curl -sf "$telurl/metrics" >"$workdir/prom.txt"
grep -q '^corgipile_wal_size_bytes' "$workdir/prom.txt"
grep -q '^corgipile_wal_last_lsn' "$workdir/prom.txt"
grep -q '^corgipile_wal_checkpoint_age_seconds' "$workdir/prom.txt"

# Cancel the detached job and confirm its terminal event.
printf '%s\n' '{"op":"cancel","job":"j1","wait":true}' >"$workdir/cancel.txt"
"$workdir/corgiserved" -connect "$addr" -replay "$workdir/cancel.txt" >"$workdir/cancel_out.txt"
grep -q '"state":"canceled"' "$workdir/cancel_out.txt"
"$workdir/corgiserved" -connect "$addr" \
    -exec "SELECT type FROM corgi_events WHERE trace_id = 'smoke-trace' AND type = 'job.canceled'" >"$workdir/canceled.txt"
grep -q 'job.canceled' "$workdir/canceled.txt"

# The JSONL event sink mirrors the ring: recovery, statement, and job
# events are all on disk.
grep -q '"ev":"event"' "$workdir/events.jsonl"
grep -q '"type":"wal.recovery"' "$workdir/events.jsonl"
grep -q '"type":"job.running"' "$workdir/events.jsonl"

kill $servepid 2>/dev/null || true
wait $servepid 2>/dev/null || true

echo "introspect smoke: OK"
